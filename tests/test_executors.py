"""Executors: sequential/threaded parity, tracing, stall detection."""

import pytest

from repro import compile_source
from repro.errors import OperatorError
from repro.runtime import (
    SequentialExecutor,
    ThreadedExecutor,
    default_registry,
)

from tests.conftest import (
    FACTORIAL_SRC,
    FIB_SRC,
    FORK_JOIN_SRC,
    fork_join_registry,
)


class TestSequential:
    def test_trace_records_operator_calls(self):
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        result = SequentialExecutor(trace=True).run(
            compiled.graph, registry=reg
        )
        assert result.tracer is not None
        labels = [r.label for r in result.tracer.op_records()]
        assert labels.count("convolve") == 4
        assert "init_fn" in labels and "term_fn" in labels

    def test_wall_seconds_positive(self):
        compiled = compile_source("main() incr(0)")
        assert compiled.run().wall_seconds > 0


class TestThreadedParity:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_fib_same_result(self, workers):
        compiled = compile_source(FIB_SRC)
        seq = SequentialExecutor().run(compiled.graph, args=(12,))
        par = ThreadedExecutor(workers).run(compiled.graph, args=(12,))
        assert par.value == seq.value == 144

    def test_factorial_same_result(self):
        compiled = compile_source(FACTORIAL_SRC)
        assert ThreadedExecutor(4).run(compiled.graph, args=(10,)).value == 3628800

    def test_fork_join_same_result(self):
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        seq = SequentialExecutor().run(compiled.graph, registry=reg)
        par = ThreadedExecutor(4).run(compiled.graph, registry=reg)
        assert seq.value == par.value == 100

    def test_mutation_heavy_program_is_race_free(self):
        # Shared mutable blocks + threads: COW must keep results exact.
        reg = default_registry()

        @reg.register(name="make_list")
        def make_list():
            return list(range(32))

        @reg.register(name="bump_all", modifies=(0,))
        def bump_all(lst, k):
            for i in range(len(lst)):
                lst[i] += k
            return lst

        @reg.register(name="total", pure=True)
        def total(lst):
            return sum(lst)

        src = """
        main()
          let base = make_list()
              a = bump_all(base, 1)
              b = bump_all(base, 100)
              c = bump_all(base, 10000)
          in <total(a), total(b), total(c), total(base)>
        """
        compiled = compile_source(src, registry=reg)
        expected = SequentialExecutor().run(compiled.graph, registry=reg).value
        for _ in range(5):
            got = ThreadedExecutor(4).run(compiled.graph, registry=reg).value
            assert got == expected

    def test_operator_error_propagates_from_worker(self):
        reg = default_registry()

        @reg.register(name="die")
        def die():
            raise RuntimeError("worker boom")

        compiled = compile_source("main() die()", registry=reg)
        with pytest.raises(OperatorError):
            ThreadedExecutor(4).run(compiled.graph, registry=reg)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(0)


class TestStatsParity:
    def test_ops_executed_identical_across_executors(self):
        compiled = compile_source(FIB_SRC)
        seq = SequentialExecutor().run(compiled.graph, args=(10,))
        par = ThreadedExecutor(3).run(compiled.graph, args=(10,))
        assert seq.stats.ops_executed == par.stats.ops_executed
        assert seq.stats.expansions == par.stats.expansions
