"""The fault-tolerance layer: supervision, retries, degradation, codec.

ISSUE 5's tentpole.  The supervised :class:`ProcessExecutor` must survive
worker crashes (SIGKILL mid-fire), hung workers (per-fire timeouts), and
failing operator bodies — re-executing firings deterministically (safe by
single-assignment: the master's memory is untouched until the commit) —
and degrade gracefully to in-process execution when the pool is beyond
saving.  Poison fires surface as structured
:class:`~repro.errors.OperatorError` with the attempt ledger.
"""

import os
import pickle

import numpy as np
import pytest

from repro import compile_source
from repro.errors import (
    OperatorError,
    PoolIrrecoverableError,
    RuntimeFailure,
)
from repro.faults import InjectedFault, parse_fault_spec
from repro.obs import (
    EventBus,
    EventLog,
    ExecutorDegraded,
    FireRetried,
    FireTimedOut,
    ShmSegmentReclaimed,
    WorkerCrashed,
    WorkerRespawned,
    attach_metrics,
)
from repro.runtime import (
    FaultPolicy,
    ProcessExecutor,
    SequentialExecutor,
    ThreadedExecutor,
    default_registry,
)
from repro.runtime.operators import OperatorSpec
from repro.runtime.supervise import run_with_retries
from repro.runtime.workers import (
    RemoteOperatorFailure,
    _decode_exception,
    _encode_exception,
)


def _registry():
    reg = default_registry()

    @reg.register(pure=True, cost=2e6)
    def mkarr(n, seed):
        rng = np.random.default_rng(seed)
        return rng.standard_normal((n, n))

    @reg.register(name="scale", modifies=(0,), cost=2e6)
    def scale(a, k):
        a *= k
        return a

    @reg.register(pure=True, cost=2e6)
    def total(a):
        return float(a.sum())

    return reg


REGISTRY = _registry()

SRC = """
main(n)
  let
    a = mkarr(n, 7)
    s1 = total(scale(a, 3))
    s2 = total(a)
  in add(s1, s2)
"""


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - non-tmpfs platforms
        return set()


def _run(spec_text=None, policy=None, workers=2, bus=None, src=SRC, n=24):
    compiled = compile_source(src, registry=REGISTRY)
    executor = ProcessExecutor(
        workers,
        cost_threshold=0.0,
        shm_threshold=256,
        fault_policy=policy,
        fault_spec=(
            parse_fault_spec(spec_text) if spec_text is not None else None
        ),
        bus=bus,
    )
    return compiled.graph, executor.run(
        compiled.graph, args=(n,), registry=REGISTRY
    )


REFERENCE = None


def _reference(n=24):
    global REFERENCE
    if REFERENCE is None:
        compiled = compile_source(SRC, registry=REGISTRY)
        REFERENCE = SequentialExecutor().run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
    return REFERENCE


# ---------------------------------------------------------------------------
# FaultPolicy
# ---------------------------------------------------------------------------
class TestFaultPolicy:
    def test_defaults(self):
        p = FaultPolicy()
        assert p.max_retries == 2
        assert p.timeout is None
        assert p.degrade == "ladder"

    def test_parse(self):
        p = FaultPolicy.parse("retries=3, timeout=10, backoff=0.1, degrade=off")
        assert (p.max_retries, p.timeout, p.backoff, p.degrade) == (
            3, 10.0, 0.1, "off",
        )
        assert FaultPolicy.parse("timeout=none").timeout is None
        assert FaultPolicy.parse("respawns=1").max_respawns == 1

    @pytest.mark.parametrize(
        "bad",
        ["retries=-1", "timeout=0", "backoff=-1", "degrade=sideways",
         "respawns=-2", "volume=11", "retries"],
    )
    def test_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPolicy.parse(bad)


# ---------------------------------------------------------------------------
# The in-process retry loop
# ---------------------------------------------------------------------------
class TestRunWithRetries:
    def _spec(self, fn, modifies=()):
        return OperatorSpec(name="op", fn=fn, modifies=modifies)

    def test_success_passthrough(self):
        spec = self._spec(lambda x: x + 1)
        assert run_with_retries(spec, (41,), FaultPolicy()) == 42

    def test_flaky_pure_op_retried(self):
        calls = []

        def flaky(x):
            calls.append(x)
            if len(calls) < 3:
                raise ValueError("transient")
            return x

        spec = self._spec(flaky)
        policy = FaultPolicy(max_retries=3, backoff=0.0)
        retries = []
        assert run_with_retries(
            spec, (7,), policy, on_retry=lambda n, e: retries.append(n)
        ) == 7
        assert len(calls) == 3
        assert retries == [1, 2]

    def test_mutating_body_failure_not_retried(self):
        # A failed modifies body may have half-written its argument; with
        # no serialization boundary the retry would see corrupted input.
        calls = []

        def bad(a):
            calls.append(1)
            a[0] = 99
            raise ValueError("mid-mutation")

        spec = self._spec(bad, modifies=(0,))
        with pytest.raises(OperatorError):
            run_with_retries(spec, ([1, 2],), FaultPolicy(max_retries=5))
        assert len(calls) == 1

    def test_injected_fault_retryable_even_for_mutators(self):
        # Injected faults fire before the body: the argument is pristine,
        # so even a modifies operator retries.
        injector = parse_fault_spec("raise:nth=1").build()
        calls = []

        def bump(a):
            calls.append(1)
            a[0] += 1
            return a

        spec = self._spec(bump, modifies=(0,))
        policy = FaultPolicy(max_retries=2, backoff=0.0)
        out = run_with_retries(spec, ([1],), policy, injector)
        assert out == [2]
        assert len(calls) == 1  # the first attempt died pre-body

    def test_poison_carries_attempt_ledger(self):
        def die(x):
            raise ValueError("always")

        spec = self._spec(die)
        with pytest.raises(OperatorError) as excinfo:
            run_with_retries(
                spec, (1,), FaultPolicy(max_retries=2, backoff=0.0), node_id=9
            )
        err = excinfo.value
        assert err.node_id == 9
        assert len(err.attempts) == 3
        assert all("always" in outcome for _, _, outcome in err.attempts)
        assert isinstance(err.__cause__, ValueError)

    def test_no_policy_means_no_retries(self):
        calls = []

        def die(x):
            calls.append(1)
            raise ValueError("nope")

        with pytest.raises(OperatorError):
            run_with_retries(self._spec(die), (1,), None)
        assert len(calls) == 1


# ---------------------------------------------------------------------------
# Exception codec (satellite: _decode_exception coverage)
# ---------------------------------------------------------------------------
class CustomError(Exception):
    pass


class Unpicklable(Exception):
    def __init__(self, msg):
        super().__init__(msg)
        self.fh = open(os.devnull)  # sockets/handles never pickle

    def __repr__(self):
        return f"Unpicklable({self.args[0]!r})"


def _raise_and_encode(exc):
    try:
        raise exc
    except Exception as caught:
        return _encode_exception(caught)


class TestExceptionCodec:
    def test_custom_type_round_trips(self):
        out = _decode_exception(_raise_and_encode(CustomError("boom", 5)))
        assert type(out) is CustomError
        assert out.args == ("boom", 5)

    def test_traceback_text_preserved(self):
        def deep():
            raise CustomError("from deep")

        try:
            deep()
        except Exception as caught:
            enc = _encode_exception(caught)
        out = _decode_exception(enc)
        assert "in deep" in out.remote_traceback
        assert "CustomError" in out.remote_traceback

    def test_nested_causes_relinked(self):
        try:
            try:
                raise KeyError("inner")
            except KeyError as inner:
                raise CustomError("outer") from inner
        except Exception as caught:
            enc = _encode_exception(caught)
        out = _decode_exception(enc)
        assert type(out) is CustomError
        assert type(out.__cause__) is KeyError
        assert out.__cause__.args == ("inner",)

    def test_unpicklable_falls_back_to_repr(self):
        out = _decode_exception(_raise_and_encode(Unpicklable("no wire")))
        assert isinstance(out, RemoteOperatorFailure)
        assert "Unpicklable('no wire')" in str(out)
        assert "worker traceback" in str(out)

    def test_unpicklable_cause_under_picklable_root(self):
        try:
            try:
                raise Unpicklable("deep handle")
            except Exception as inner:
                raise CustomError("outer") from inner
        except Exception as caught:
            enc = _encode_exception(caught)
        out = _decode_exception(enc)
        assert type(out) is CustomError
        assert isinstance(out.__cause__, RemoteOperatorFailure)
        assert "deep handle" in str(out.__cause__)

    def test_wire_form_pickles(self):
        enc = _raise_and_encode(CustomError("wire"))
        assert _decode_exception(pickle.loads(pickle.dumps(enc))).args == (
            "wire",
        )

    def test_legacy_formats_accepted(self):
        legacy = ("pickle", pickle.dumps(ValueError("old")), "tb text")
        assert _decode_exception(legacy).args == ("old",)
        text = _decode_exception(("text", "repr of exc", "tb text"))
        assert isinstance(text, RemoteOperatorFailure)
        assert "repr of exc" in str(text)


# ---------------------------------------------------------------------------
# Crash recovery
# ---------------------------------------------------------------------------
class TestCrashRecovery:
    def test_killed_worker_respawned_and_result_identical(self):
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        before = _shm_entries()
        _, result = _run("kill:op=total,nth=1", bus=bus)
        assert result.value == _reference()
        assert result.stats.worker_crashes >= 1
        assert result.stats.worker_respawns >= 1
        assert result.stats.fires_retried >= 1
        crashes = log.of_type(WorkerCrashed)
        respawns = log.of_type(WorkerRespawned)
        retried = log.of_type(FireRetried)
        assert crashes and respawns and retried
        assert crashes[0].exitcode == -9
        assert any(e.reason == "crash" for e in retried)
        assert _shm_entries() <= before  # nothing leaked

    def test_arena_segments_reclaimed_from_dead_worker(self):
        # total's argument is a big array: it rides a pooled arena
        # segment, which the worker still holds when SIGKILL lands.
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        _, result = _run("kill:op=total,nth=1", bus=bus)
        reclaimed = log.of_type(ShmSegmentReclaimed)
        assert reclaimed
        assert result.stats.shm_segments_reclaimed == len(reclaimed)
        assert all(e.nbytes > 0 for e in reclaimed)

    def test_metrics_reflect_injected_faults(self):
        bus = EventBus()
        metrics = attach_metrics(bus)
        _, result = _run("kill:op=total,nth=1", bus=bus)
        assert (
            metrics.counter("worker_crashes").value
            == result.stats.worker_crashes
        )
        assert (
            metrics.counter("fires_retried").value
            == result.stats.fires_retried
        )
        assert metrics.counter("shm_segments_reclaimed").value == (
            result.stats.shm_segments_reclaimed
        )

    def test_random_kills_still_bit_identical(self):
        _, result = _run(
            "kill:p=0.1,seed=3",
            policy=FaultPolicy(max_retries=4, backoff=0.0, max_respawns=64),
        )
        assert result.value == _reference()


# ---------------------------------------------------------------------------
# Timeouts
# ---------------------------------------------------------------------------
class TestTimeouts:
    def test_hung_worker_killed_and_fire_retried(self):
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        _, result = _run(
            "delay:op=total,nth=1,seconds=30",
            policy=FaultPolicy(max_retries=2, timeout=0.5, backoff=0.0),
            bus=bus,
        )
        assert result.value == _reference()
        assert result.stats.fires_timed_out >= 1
        assert result.stats.worker_crashes >= 1
        timed_out = log.of_type(FireTimedOut)
        assert timed_out and timed_out[0].timeout == 0.5
        assert any(
            e.reason == "timeout" or "timed out" in str(e.reason)
            for e in log.of_type(FireRetried)
        )


# ---------------------------------------------------------------------------
# Poison fires
# ---------------------------------------------------------------------------
class TestPoisonFires:
    def test_structured_operator_error(self):
        with pytest.raises(OperatorError) as excinfo:
            _run(
                "raise:op=total,p=1.0",
                policy=FaultPolicy(max_retries=2, backoff=0.0),
            )
        err = excinfo.value
        assert err.operator == "total"
        assert err.node_id >= 0
        assert len(err.attempts) == 3
        assert err.worker_pid is not None
        assert isinstance(err.__cause__, InjectedFault)

    def test_real_worker_exception_still_wrapped(self):
        reg = default_registry()

        @reg.register(name="die", cost=2e6)
        def die(x):
            raise ValueError(f"worker boom {x}")

        compiled = compile_source("main(n) die(n)", registry=reg)
        with pytest.raises(OperatorError) as excinfo:
            ProcessExecutor(2, cost_threshold=0.0).run(
                compiled.graph, args=(5,), registry=reg
            )
        assert "die" in str(excinfo.value)
        assert "worker boom 5" in str(excinfo.value.__cause__)


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------
class TestDegradation:
    def test_irrecoverable_pool_degrades_inline(self):
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        _, result = _run(
            "kill:p=1.0",
            policy=FaultPolicy(max_retries=1, max_respawns=0, backoff=0.0),
            bus=bus,
        )
        assert result.value == _reference()
        assert result.stats.executor_degraded >= 1
        degraded = log.of_type(ExecutorDegraded)
        assert degraded and degraded[0].from_executor == "process"

    def test_degrade_off_surfaces_pool_error(self):
        with pytest.raises(PoolIrrecoverableError) as excinfo:
            _run(
                "kill:p=1.0",
                policy=FaultPolicy(
                    max_retries=1, max_respawns=0, degrade="off", backoff=0.0
                ),
            )
        assert "respawn budget" in str(excinfo.value)

    def test_pool_construction_failure_falls_to_threaded(self, monkeypatch):
        import repro.runtime.executors as executors

        def broken_pool(*args, **kwargs):
            raise OSError("no processes today")

        monkeypatch.setattr(executors, "WorkerPool", broken_pool)
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        _, result = _run(None, bus=bus)
        assert result.value == _reference()
        assert result.stats.executor_degraded >= 1
        degraded = log.of_type(ExecutorDegraded)
        assert degraded[0].to_executor == "threaded"
        assert "no processes today" in degraded[0].reason

    def test_operator_error_not_swallowed_by_ladder(self, monkeypatch):
        # Degradation handles machinery failures; a failing *program*
        # must surface identically from the fallback executor.
        import repro.runtime.executors as executors

        monkeypatch.setattr(
            executors,
            "WorkerPool",
            lambda *a, **k: (_ for _ in ()).throw(OSError("down")),
        )
        with pytest.raises(OperatorError):
            _run("raise:op=total,p=1.0", policy=FaultPolicy(max_retries=0))


# ---------------------------------------------------------------------------
# Inline executors under injection
# ---------------------------------------------------------------------------
class TestInlineExecutors:
    def test_sequential_with_injection_matches(self):
        compiled = compile_source(SRC, registry=REGISTRY)
        result = SequentialExecutor(
            fault_policy=FaultPolicy(max_retries=3, backoff=0.0),
            fault_spec=parse_fault_spec("raise:p=0.3,seed=5"),
        ).run(compiled.graph, args=(24,), registry=REGISTRY)
        assert result.value == _reference()
        assert result.stats.fires_retried >= 1

    def test_threaded_with_injection_matches(self):
        compiled = compile_source(SRC, registry=REGISTRY)
        result = ThreadedExecutor(
            3,
            fault_policy=FaultPolicy(max_retries=3, backoff=0.0),
            fault_spec=parse_fault_spec("raise:p=0.3,seed=5"),
        ).run(compiled.graph, args=(24,), registry=REGISTRY)
        assert result.value == _reference()
        assert result.stats.fires_retried >= 1

    def test_kill_clause_inert_in_inline_executors(self):
        compiled = compile_source(SRC, registry=REGISTRY)
        result = SequentialExecutor(
            fault_spec=parse_fault_spec("kill:p=1.0"),
        ).run(compiled.graph, args=(24,), registry=REGISTRY)
        assert result.value == _reference()


# ---------------------------------------------------------------------------
# Double-release guards (satellite)
# ---------------------------------------------------------------------------
class TestDoubleReleaseGuards:
    def test_buffer_pool_rejects_double_offer(self):
        from repro.runtime.blocks import BufferPool

        pool = BufferPool()
        arr = np.ones(64)
        assert pool.put(arr)
        with pytest.raises(RuntimeError, match="twice"):
            pool.put(arr)

    def test_activation_pool_rejects_double_release(self):
        from repro.runtime import ActivationPool
        from repro.runtime.scheduler import Task  # noqa: F401 - engine dep

        compiled = compile_source("main(n) incr(n)")
        pool = ActivationPool()
        act = pool.acquire(compiled.graph.template("main"))
        pool.release(act)
        with pytest.raises(RuntimeError, match="released"):
            pool.release(act)

    def test_complete_fire_rejects_double_commit(self):
        from repro.runtime import ExecutionState

        compiled = compile_source("main(n) incr(n)")
        state = ExecutionState(compiled.graph, default_registry())
        tasks = list(state.start((1,)))
        pending = None
        while tasks and pending is None:
            outcome = state.begin_fire(tasks.pop())
            tasks.extend(outcome.newly)
            pending = outcome.pending
        assert pending is not None
        raw = pending.spec.fn(*pending.args)
        state.complete_fire(pending, raw)
        with pytest.raises(RuntimeFailure, match="twice"):
            state.complete_fire(pending, raw)
