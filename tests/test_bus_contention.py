"""Shared-bus contention modeling (the Sequent/Cray bus of section 7)."""

import dataclasses

import numpy as np
import pytest

from repro import compile_source, default_registry
from repro.machine import MachineModel, SimulatedExecutor


def bus_machine(p: int, bandwidth: float) -> MachineModel:
    return MachineModel(
        name="busy-bus",
        processors=p,
        dispatch_ticks=0.0,
        node_overhead_ticks=0.0,
        activation_ticks=0.0,
        default_op_ticks=1000.0,
        local_ticks_per_byte=0.001,  # traffic is charged -> moves on the bus
        bus_bytes_per_tick=bandwidth,
    )


def _traffic_program(n_consumers: int = 4):
    """One 80 KB block read by n consumers in parallel."""
    reg = default_registry()

    @reg.register(name="big", cost=10.0)
    def big():
        return np.zeros(10_000)  # 80 KB

    @reg.register(name="chew", pure=True, cost=100.0)
    def chew(a, k):
        return float(a[k])

    bindings = "\n      ".join(
        f"c{i} = chew(blk, {i})" for i in range(n_consumers)
    )
    acc = "c0"
    for i in range(1, n_consumers):
        acc = f"add({acc}, c{i})"
    src = f"main()\n  let blk = big()\n      {bindings}\n  in {acc}"
    return compile_source(src, registry=reg), reg


class TestBusContention:
    def test_zero_bandwidth_means_uncontended(self):
        compiled, reg = _traffic_program()
        result = SimulatedExecutor(bus_machine(4, 0.0)).run(
            compiled.graph, registry=reg
        )
        assert result.traffic.bus_wait_ticks == 0.0

    def test_saturated_bus_serializes_readers(self):
        compiled, reg = _traffic_program()
        fat = SimulatedExecutor(bus_machine(4, 1e9)).run(
            compiled.graph, registry=reg
        )
        thin = SimulatedExecutor(bus_machine(4, 100.0)).run(
            compiled.graph, registry=reg
        )
        assert fat.value == thin.value
        assert thin.traffic.bus_wait_ticks > 0
        # Four concurrent 80 KB reads over a 100 B/tick bus: transfers
        # alone take 800 ticks each, queueing behind one another.
        assert thin.ticks > fat.ticks + 2 * 800

    def test_single_processor_never_queues(self):
        compiled, reg = _traffic_program()
        result = SimulatedExecutor(bus_machine(1, 100.0)).run(
            compiled.graph, registry=reg
        )
        # One processor issues transfers one at a time; transfers always
        # find the bus free (no overlap possible).
        assert result.traffic.bus_wait_ticks == 0.0

    def test_results_unchanged_by_bandwidth(self):
        compiled, reg = _traffic_program()
        values = {
            SimulatedExecutor(bus_machine(3, bw)).run(
                compiled.graph, registry=reg
            ).value
            for bw in (0.0, 10.0, 1e6)
        }
        assert len(values) == 1

    def test_negative_bandwidth_rejected(self):
        from repro.errors import MachineError

        with pytest.raises(MachineError):
            MachineModel(name="x", processors=1, bus_bytes_per_tick=-1.0)

    def test_template_fetches_compete_for_the_bus(self):
        # Replication off + narrow bus: expansions queue on template
        # fetches, compounding the section 7 effect.
        from tests.conftest import FIB_SRC

        compiled = compile_source(FIB_SRC)
        base = dataclasses.replace(
            bus_machine(4, 50.0), replicate_templates=False,
            template_fetch_ticks_per_byte=0.01,
        )
        no_bus = dataclasses.replace(base, bus_bytes_per_tick=0.0)
        contended = SimulatedExecutor(base).run(compiled.graph, args=(10,))
        free = SimulatedExecutor(no_bus).run(compiled.graph, args=(10,))
        assert contended.value == free.value == 55
        assert contended.traffic.bus_wait_ticks > 0
        assert contended.ticks > free.ticks
