"""Coordination-graph IR, validation, and visualization."""

import pytest

from repro import compile_source
from repro.errors import GraphError
from repro.graph.ir import GraphProgram, Node, NodeKind, Port, Template
from repro.graph.validate import validate_program
from repro.graph.viz import ascii_framework, template_layers, to_dot, to_networkx

from tests.conftest import FORK_JOIN_SRC, fork_join_registry


def identity_template(name: str = "main") -> Template:
    t = Template(name=name, params=["x"])
    t.nodes.append(Node(kind=NodeKind.PARAM, name="x"))
    t.result = Port(0, 0)
    return t.finalize()


class TestTemplate:
    def test_finalize_builds_consumers(self):
        t = Template(name="t", params=["x"])
        t.nodes.append(Node(kind=NodeKind.PARAM, name="x"))
        t.nodes.append(Node(kind=NodeKind.OP, name="f", inputs=[Port(0)]))
        t.result = Port(1, 0)
        t.finalize()
        assert t.consumers[0][0] == [(1, 0)]
        assert t.initial_ready == []

    def test_const_is_initially_ready(self):
        t = Template(name="t")
        t.nodes.append(Node(kind=NodeKind.CONST, value=1))
        t.result = Port(0, 0)
        t.finalize()
        assert t.initial_ready == [0]

    def test_missing_result_rejected(self):
        t = Template(name="t")
        t.nodes.append(Node(kind=NodeKind.CONST, value=1))
        with pytest.raises(GraphError):
            t.finalize()

    def test_dangling_input_rejected(self):
        t = Template(name="t")
        t.nodes.append(Node(kind=NodeKind.OP, name="f", inputs=[Port(5)]))
        t.result = Port(0, 0)
        with pytest.raises(GraphError):
            t.finalize()

    def test_bad_out_port_rejected(self):
        t = Template(name="t")
        t.nodes.append(Node(kind=NodeKind.CONST, value=1))
        t.nodes.append(Node(kind=NodeKind.OP, name="f", inputs=[Port(0, 3)]))
        t.result = Port(1, 0)
        with pytest.raises(GraphError):
            t.finalize()

    def test_describe_mentions_ops(self):
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        text = compiled.graph.template("main").describe()
        assert "convolve" in text and "result:" in text


class TestGraphProgram:
    def test_duplicate_template_rejected(self):
        g = GraphProgram()
        g.add(identity_template())
        with pytest.raises(GraphError):
            g.add(identity_template())

    def test_missing_template_lookup(self):
        with pytest.raises(GraphError):
            GraphProgram().template("nope")

    def test_total_nodes_and_memory(self):
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        assert compiled.graph.total_nodes() > 5
        assert compiled.graph.memory_bytes() > 0


class TestValidation:
    def test_compiled_programs_validate(self):
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        report = validate_program(compiled.graph)
        assert report.templates_checked == len(compiled.graph.templates)

    def test_all_fixture_programs_validate(self):
        from tests.conftest import FACTORIAL_SRC, FIB_SRC, HIGHER_ORDER_SRC

        for source in (FACTORIAL_SRC, FIB_SRC, HIGHER_ORDER_SRC):
            validate_program(compile_source(source).graph)

    def test_missing_entry(self):
        g = GraphProgram(entry="main")
        with pytest.raises(GraphError):
            validate_program(g)

    def test_cycle_detected(self):
        t = Template(name="main")
        t.nodes.append(Node(kind=NodeKind.OP, name="a", inputs=[Port(1)]))
        t.nodes.append(Node(kind=NodeKind.OP, name="b", inputs=[Port(0)]))
        t.result = Port(0, 0)
        t.finalize()
        g = GraphProgram()
        g.add(t)
        with pytest.raises(GraphError, match="cycle"):
            validate_program(g)

    def test_closure_capture_mismatch_detected(self):
        target = Template(name="f", captures=["k"])
        target.nodes.append(Node(kind=NodeKind.CAPTURE, name="k"))
        target.result = Port(0, 0)
        target.finalize()
        main = Template(name="main")
        main.nodes.append(Node(kind=NodeKind.CLOSURE, template="f", inputs=[]))
        main.result = Port(0, 0)
        main.finalize()
        g = GraphProgram()
        g.add(target)
        g.add(main)
        with pytest.raises(GraphError, match="capture"):
            validate_program(g)

    def test_unfinalized_template_detected(self):
        t = Template(name="main")
        t.nodes.append(Node(kind=NodeKind.CONST, value=1))
        t.result = Port(0, 0)
        g = GraphProgram()
        g.templates["main"] = t  # bypass add/finalize
        with pytest.raises(GraphError, match="finalize"):
            validate_program(g)

    def test_dead_nodes_reported_not_raised(self):
        compiled = compile_source(
            "main(n) let unused = incr(n) in n", optimize_passes=()
        )
        report = validate_program(compiled.graph)
        assert len(report.dead_nodes) >= 1


class TestViz:
    @pytest.fixture
    def compiled(self):
        reg = fork_join_registry()
        return compile_source(FORK_JOIN_SRC, registry=reg)

    def test_networkx_graph_shape(self, compiled):
        g = to_networkx(compiled.graph)
        titles = [d["title"] for _, d in g.nodes(data=True)]
        assert titles.count("convolve") == 4

    def test_dot_output(self, compiled):
        dot = to_dot(compiled.graph)
        assert dot.startswith("digraph")
        assert "convolve" in dot
        assert dot.rstrip().endswith("}")

    def test_ascii_framework_shows_parallel_stage(self, compiled):
        art = ascii_framework(compiled.graph)
        # The four convolve calls form one wide layer.
        wide_lines = [l for l in art.splitlines() if l.count("convolve") == 4]
        assert wide_lines

    def test_template_layers_widths(self, compiled):
        layers = template_layers(compiled.graph.template("main"))
        widths = [len(layer) for layer in layers]
        assert max(widths) >= 4  # the fork

    def test_expansion_edges_present(self):
        compiled = compile_source("main(n) if n then incr(n) else n")
        g = to_networkx(compiled.graph)
        kinds = {d["kind"] for _, _, d in g.edges(data=True)}
        assert "expands" in kinds
