"""The last-use ("donation") analysis: pass, validation, serialization,
cache keying, and the engine's trust-but-verify dynamic semantics.

The static rule lives in :func:`repro.graph.validate.donation_violation`
(single source of truth); the pass in ``compiler/passes/donate.py``
annotates exactly the edges that rule accepts; ``validate_template``
re-checks every annotation so a mis-annotated graph — hand-edited,
corrupted, or produced by a buggy pass — is rejected before the engine
can corrupt a shared payload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GraphError, compile_source, validate_program
from repro.compiler.passes import donate
from repro.compiler.passes.pipeline import PASS_ORDER
from repro.graph import serialize
from repro.graph.ir import NodeKind
from repro.graph.validate import donation_violation
from repro.runtime import SequentialExecutor
from repro.runtime.operators import OperatorRegistry, default_registry
from repro.tools.cache import cache_key

DONATING = PASS_ORDER + ("fuse", "donate")


def _registry() -> OperatorRegistry:
    reg = default_registry()
    local = OperatorRegistry()

    @local.register(name="mkblock", cost=20.0)
    def mkblock(n):
        return [n, n + 1, n + 2]

    @local.register(name="mkarray", pure=True, cost=20.0)
    def mkarray(n):
        return np.full(1024, float(n))

    @local.register(name="bump", modifies=(0,), cost=30.0)
    def bump(lst, k):
        for i in range(len(lst)):
            lst[i] += k
        return lst

    @local.register(name="abump", modifies=(0,), cost=30.0)
    def abump(a, k):
        a += k
        return a

    @local.register(name="blk_sum", pure=True, cost=10.0)
    def blk_sum(x):
        return int(np.sum(x)) if isinstance(x, np.ndarray) else sum(x)

    return reg.merged_with(local)


REGISTRY = _registry()

CHAIN = """
main(n)
  blk_sum(bump(bump(mkblock(n), 1), 2))
"""

SHARED = """
main(n)
  let x = mkblock(n)
      a = bump(x, 1)
  in add(blk_sum(a), 0)
"""


def _entry(compiled):
    return compiled.graph.templates[compiled.graph.entry]


class TestAnnotation:
    def test_chain_edges_donated(self):
        compiled = compile_source(
            CHAIN, registry=REGISTRY, optimize_passes=DONATING
        )
        template = _entry(compiled)
        donated = {
            (i, d)
            for i, node in enumerate(template.nodes)
            if node.donated
            for d in node.donated
        }
        assert donated, "single-consumer chain must donate"
        validate_program(compiled.graph)
        # Every bump receives its block argument donated: sole consumer,
        # plain OP producer, not the template result.
        for i, node in enumerate(template.nodes):
            if node.kind is NodeKind.OP and node.name == "bump":
                assert node.donated and 0 in node.donated, (i, node)

    def test_undonated_passes_leave_no_annotations(self):
        compiled = compile_source(
            CHAIN, registry=REGISTRY, optimize_passes=PASS_ORDER + ("fuse",)
        )
        assert all(
            node.donated is None
            for t in compiled.graph.templates.values()
            for node in t.nodes
        )

    def test_result_port_never_donated(self):
        # In SHARED, `a` (bump's output) flows to blk_sum whose output is
        # combined into the result; the template-result port itself is
        # excluded by the rule regardless of consumer count.
        compiled = compile_source(
            SHARED, registry=REGISTRY, optimize_passes=DONATING
        )
        template = _entry(compiled)
        result = template.result
        for node in template.nodes:
            if not node.donated:
                continue
            for i in node.donated:
                port = node.inputs[i]
                assert not (
                    result.node == port.node and result.out == port.out
                )

    def test_violation_reasons(self):
        compiled = compile_source(
            SHARED, registry=REGISTRY, optimize_passes=()
        )
        template = _entry(compiled)
        param = next(
            i
            for i, n in enumerate(template.nodes)
            if n.kind is NodeKind.PARAM
        )
        assert "not an operator" in donation_violation(template, param, 0)
        some_op = next(
            i for i, n in enumerate(template.nodes) if n.kind is NodeKind.OP
        )
        assert "has no input" in donation_violation(template, some_op, 99)

    def test_run_reports_stats(self):
        compiled = compile_source(
            CHAIN, registry=REGISTRY, optimize_passes=PASS_ORDER
        )
        stats = donate.run(compiled.graph)
        assert stats["donate.edges_donated"] >= 2
        assert stats["donate.nodes_annotated"] >= 2


class TestValidation:
    def test_misannotated_shared_edge_rejected(self):
        # Compile WITHOUT donation, then forge a donated annotation on an
        # edge whose producing port has several consumers — exactly the
        # corruption validate_program must catch (the COW-safety net).
        source = """
main(n)
  let x = mkblock(n)
      a = bump(x, 1)
  in add(blk_sum(a), blk_sum(x))
"""
        compiled = compile_source(
            source, registry=REGISTRY, optimize_passes=()
        )
        template = _entry(compiled)
        bump_id = next(
            i
            for i, n in enumerate(template.nodes)
            if n.kind is NodeKind.OP and n.name == "bump"
        )
        assert donation_violation(template, bump_id, 0) is not None
        template.nodes[bump_id].donated = (0,)
        with pytest.raises(GraphError, match="annotated donated"):
            validate_program(compiled.graph)

    def test_out_of_range_annotation_rejected(self):
        compiled = compile_source(
            CHAIN, registry=REGISTRY, optimize_passes=()
        )
        template = _entry(compiled)
        op = next(
            i for i, n in enumerate(template.nodes) if n.kind is NodeKind.OP
        )
        template.nodes[op].donated = (42,)
        with pytest.raises(GraphError, match="no input 42"):
            validate_program(compiled.graph)

    def test_annotated_graph_validates(self):
        compiled = compile_source(
            CHAIN, registry=REGISTRY, optimize_passes=DONATING
        )
        validate_program(compiled.graph)


class TestSerialization:
    def test_round_trip_preserves_annotations(self):
        compiled = compile_source(
            CHAIN, registry=REGISTRY, optimize_passes=DONATING
        )
        text = serialize.dumps(compiled.graph)
        restored = serialize.loads(text)
        for name, template in compiled.graph.templates.items():
            other = restored.templates[name]
            assert [n.donated for n in template.nodes] == [
                n.donated for n in other.nodes
            ]
        assert serialize.dumps(restored) == text

    def test_unannotated_dump_has_no_donated_key(self):
        # Dumps of graphs that never ran the donation pass must stay
        # bit-identical to the pre-donation format: the key is simply
        # absent, not null.
        compiled = compile_source(
            CHAIN, registry=REGISTRY, optimize_passes=PASS_ORDER + ("fuse",)
        )
        assert "donated" not in serialize.dumps(compiled.graph)


class TestCacheKey:
    def test_donate_pass_changes_key(self):
        with_donate = cache_key(CHAIN, passes=DONATING)
        without = cache_key(CHAIN, passes=PASS_ORDER + ("fuse",))
        assert with_donate != without
        assert with_donate == cache_key(CHAIN, passes=DONATING)


class TestDescribe:
    def test_describe_shows_donated_inputs(self):
        compiled = compile_source(
            CHAIN, registry=REGISTRY, optimize_passes=DONATING
        )
        assert "donated=[0]" in _entry(compiled).describe()


class TestEngineSemantics:
    def test_donated_chain_runs_in_place_and_matches(self):
        donated = compile_source(
            CHAIN, registry=REGISTRY, optimize_passes=DONATING
        )
        plain = compile_source(CHAIN, registry=REGISTRY, optimize_passes=())
        for n in (0, 3, -2):
            ref = SequentialExecutor().run(
                plain.graph, args=(n,), registry=REGISTRY
            )
            res = SequentialExecutor().run(
                donated.graph, args=(n,), registry=REGISTRY
            )
            assert res.value == ref.value
            assert res.stats.cow_copies == 0
            assert res.stats.copies_avoided >= 2
            assert res.stats.donation_misses == 0

    def test_dynamic_aliasing_falls_back_to_cow(self):
        # <a, b> = <x, x>: a's untuple port has one consumer, so the edge
        # into bump is statically donatable — but at fire time the block
        # is shared with b (rc 2), the case the static rule cannot see.
        # The engine's reference-count guard must miss and COW.
        source = """
main(n)
  let x = mkblock(n)
      p = <x, x>
      <a, b> = p
      va = bump(a, 1)
  in add(blk_sum(va), blk_sum(b))
"""
        donated = compile_source(
            source, registry=REGISTRY, optimize_passes=DONATING
        )
        plain = compile_source(source, registry=REGISTRY, optimize_passes=())
        ref = SequentialExecutor().run(
            plain.graph, args=(2,), registry=REGISTRY
        )
        res = SequentialExecutor().run(
            donated.graph, args=(2,), registry=REGISTRY
        )
        assert res.value == ref.value
        template = _entry(donated)
        bump_donated = any(
            0 in (node.donated or ())
            for node in template.nodes
            if node.kind is NodeKind.OP and node.name == "bump"
        )
        if bump_donated:
            assert res.stats.donation_misses >= 1
            assert res.stats.cow_copies >= 1

    def test_dead_donated_ndarray_buffer_recycled(self):
        # mkarray's buffer is donated into abump (in place), abump's
        # result is donated into blk_sum; after blk_sum the array dies
        # with a non-aliasing scalar result — its buffer must enter the
        # pool for the next same-shape COW.
        source = """
main(n)
  blk_sum(abump(mkarray(n), 1))
"""
        compiled = compile_source(
            source, registry=REGISTRY, optimize_passes=DONATING
        )
        res = SequentialExecutor().run(
            compiled.graph, args=(3,), registry=REGISTRY
        )
        assert res.value == 4 * 1024
        assert res.stats.cow_copies == 0
        assert res.stats.pool_stats["held_bytes"] == 1024 * 8
