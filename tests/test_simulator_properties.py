"""Property tests on the simulator's accounting invariants."""

from hypothesis import given, settings, strategies as st

from repro import compile_source
from repro.machine import SimulatedExecutor, butterfly, cray_ymp, sequent, uniform

from tests.test_properties import REGISTRY, _programs


def _run(source, n, machine, **kw):
    compiled = compile_source(source, registry=REGISTRY)
    return SimulatedExecutor(machine, trace=True, **kw).run(
        compiled.graph, args=(n,), registry=REGISTRY
    )


class TestAccountingInvariants:
    @settings(max_examples=25, deadline=None)
    @given(_programs(), st.integers(-3, 3), st.integers(1, 6))
    def test_busy_bounded_by_makespan(self, source, n, p):
        result = _run(source, n, uniform(p))
        for busy in result.busy_ticks:
            assert busy <= result.ticks + 1e-6
        assert result.utilization() <= 1.0 + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(_programs(), st.integers(-3, 3), st.integers(1, 6))
    def test_makespan_at_least_work_over_p(self, source, n, p):
        result = _run(source, n, uniform(p))
        assert result.ticks >= result.compute_ticks_total / p - 1e-6

    @settings(max_examples=20, deadline=None)
    @given(_programs(), st.integers(-3, 3))
    def test_dispatch_accounting(self, source, n):
        machine = cray_ymp(3)
        result = _run(source, n, machine)
        expected = machine.dispatch_ticks * result.stats.tasks_fired
        assert result.dispatch_ticks_total == expected

    @settings(max_examples=20, deadline=None)
    @given(_programs(), st.integers(-3, 3))
    def test_no_remote_traffic_on_one_numa_processor(self, source, n):
        result = _run(source, n, butterfly(1))
        assert result.traffic.remote_bytes == 0

    @settings(max_examples=20, deadline=None)
    @given(_programs(), st.integers(-3, 3), st.integers(2, 5))
    def test_trace_spans_never_overlap_per_processor(self, source, n, p):
        result = _run(source, n, sequent(p))
        assert result.tracer is not None
        by_processor: dict[int, list] = {}
        for record in result.tracer.records:
            by_processor.setdefault(record.processor, []).append(record)
        for records in by_processor.values():
            records.sort(key=lambda r: r.start)
            for a, b in zip(records, records[1:]):
                assert b.start >= a.start + a.ticks - 1e-6

    @settings(max_examples=15, deadline=None)
    @given(_programs(), st.integers(-3, 3))
    def test_trace_totals_match_busy_ticks(self, source, n):
        result = _run(source, n, uniform(3))
        assert result.tracer is not None
        by_processor = [0.0, 0.0, 0.0]
        for record in result.tracer.records:
            by_processor[record.processor] += record.ticks
        for traced, busy in zip(by_processor, result.busy_ticks):
            assert traced == busy

    @settings(max_examples=15, deadline=None)
    @given(_programs(), st.integers(-3, 3))
    def test_stats_identical_across_machines(self, source, n):
        # Engine-side statistics (ops, expansions) are schedule facts,
        # not machine facts.
        compiled = compile_source(source, registry=REGISTRY)
        a = SimulatedExecutor(uniform(1)).run(
            compiled.graph, args=(n,), registry=REGISTRY
        )
        b = SimulatedExecutor(butterfly(4), affinity="data").run(
            compiled.graph, args=(n,), registry=REGISTRY
        )
        assert a.stats.ops_executed == b.stats.ops_executed
        assert a.stats.expansions == b.stats.expansions
