"""Observability invariants: event causality, metrics/stats parity, and
zero-subscriber transparency (ISSUE 1 satellite coverage)."""

import json

import pytest

from repro import compile_source, default_registry
from repro.machine import SimulatedExecutor, cray_ymp
from repro.obs import (
    ActivationAllocated,
    ActivationRecycled,
    BlockReleased,
    BlockRetained,
    Counter,
    CowCopy,
    EventBus,
    EventLog,
    Expansion,
    Gauge,
    Histogram,
    MetricsRegistry,
    OpFinished,
    OpStarted,
    QueueDepthSample,
    Series,
    TailExpansion,
    TaskEnqueued,
    TaskFired,
    attach_metrics,
    observe_blocks,
)
from repro.runtime import SequentialExecutor, ThreadedExecutor, Tracer

from tests.conftest import FIB_SRC, FORK_JOIN_SRC, fork_join_registry


def cow_program():
    """A program that forces copy-on-write: one list, two writers."""
    reg = default_registry()

    @reg.register()
    def make_list(n):
        return [n, n, n]

    @reg.register(modifies=(0,))
    def bump(xs):
        xs[0] += 1
        return xs

    @reg.register(pure=True)
    def peek(xs):
        return xs[0]

    src = """
    main(n)
      let xs = make_list(n)
          a = bump(xs)
          b = bump(xs)
      in add(peek(a), peek(b))
    """
    return compile_source(src, registry=reg), reg


class TestCausalConsistency:
    def _run_logged(self, src, args=(), registry=None):
        compiled = compile_source(src, registry=registry)
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        result = SequentialExecutor(bus=bus).run(
            compiled.graph, args=args, registry=registry
        )
        return result, log

    def test_every_fired_task_was_enqueued_first(self):
        result, log = self._run_logged(FIB_SRC, args=(10,))
        enqueued_at = {}
        for i, e in enumerate(log.events):
            if isinstance(e, TaskEnqueued):
                enqueued_at[e.seq] = i
        fired = [
            (i, e) for i, e in enumerate(log.events) if isinstance(e, TaskFired)
        ]
        assert fired, "no TaskFired events"
        assert len(fired) == result.stats.tasks_fired
        for i, e in fired:
            assert e.seq in enqueued_at, f"task seq {e.seq} never enqueued"
            assert enqueued_at[e.seq] < i, "fired before enqueued"

    def test_enqueue_and_fire_agree_on_identity(self):
        _, log = self._run_logged(FIB_SRC, args=(6,))
        by_seq = {
            e.seq: e for e in log.events if isinstance(e, TaskEnqueued)
        }
        for e in log.events:
            if isinstance(e, TaskFired):
                q = by_seq[e.seq]
                assert (q.aid, q.node_id, q.label, q.kind, q.priority) == (
                    e.aid, e.node_id, e.label, e.kind, e.priority
                )

    def test_op_started_finished_pair_up(self):
        result, log = self._run_logged(FIB_SRC, args=(8,))
        depth = 0
        pending_name = None
        starts = finishes = 0
        for e in log.events:
            if isinstance(e, OpStarted):
                assert depth == 0, "sequential ops must not nest"
                depth += 1
                pending_name = e.name
                starts += 1
            elif isinstance(e, OpFinished):
                assert depth == 1, "OpFinished without OpStarted"
                assert e.name == pending_name
                assert e.duration >= 0
                depth -= 1
                finishes += 1
        assert starts == finishes == result.stats.ops_executed

    def test_activation_allocated_before_recycled(self):
        _, log = self._run_logged(FIB_SRC, args=(8,))
        allocated_at = {}
        for i, e in enumerate(log.events):
            if isinstance(e, ActivationAllocated):
                assert e.aid not in allocated_at, "aid allocated twice"
                allocated_at[e.aid] = i
            elif isinstance(e, ActivationRecycled):
                assert e.aid in allocated_at
                assert allocated_at[e.aid] < i
        assert allocated_at, "no activations observed"

    def test_queue_samples_and_task_spans_have_monotonic_time(self):
        _, log = self._run_logged(FIB_SRC, args=(8,))
        for cls in (QueueDepthSample, TaskFired):
            stamps = [e.ts for e in log.events if isinstance(e, cls)]
            assert stamps, f"no {cls.__name__} events"
            assert all(a <= b for a, b in zip(stamps, stamps[1:]))

    def test_expansions_are_also_seen_by_expansion_subscribers(self):
        compiled = compile_source(FIB_SRC)
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, events=(Expansion,))
        result = SequentialExecutor(bus=bus).run(compiled.graph, args=(8,))
        assert len(seen) == result.stats.expansions
        tails = [e for e in seen if isinstance(e, TailExpansion)]
        assert len(tails) == result.stats.tail_expansions


class TestMetricsMatchEngineStats:
    @pytest.mark.parametrize("mode", ["sequential", "simulated"])
    def test_counters_equal_stats(self, mode):
        compiled, reg = cow_program()
        bus = EventBus()
        metrics = attach_metrics(bus)
        if mode == "sequential":
            result = SequentialExecutor(bus=bus).run(
                compiled.graph, args=(5,), registry=reg
            )
        else:
            result = SimulatedExecutor(cray_ymp(4), bus=bus).run(
                compiled.graph, args=(5,), registry=reg
            )
        stats = result.stats
        assert metrics.counter("ops_executed").value == stats.ops_executed
        assert metrics.counter("cow_copies").value == stats.cow_copies
        assert metrics.counter("expansions").value == stats.expansions
        assert (
            metrics.counter("tail_expansions").value == stats.tail_expansions
        )
        assert metrics.counter("tasks_fired").value == stats.tasks_fired
        assert stats.cow_copies > 0, "program must exercise COW"
        assert (
            metrics.counter("cow_bytes").by_label
            == stats.copy_bytes_by_operator
        )

    def test_activation_metrics_match_pool(self):
        compiled = compile_source(FIB_SRC)
        bus = EventBus()
        metrics = attach_metrics(bus)
        result = SequentialExecutor(bus=bus).run(compiled.graph, args=(10,))
        assert (
            metrics.counter("activations_allocated").value
            == result.stats.activation_stats["created"]
            + result.stats.activation_stats["reused"]
        )
        assert (
            metrics.counter("activations_reused").value
            == result.stats.activation_stats["reused"]
        )
        assert (
            metrics.gauge("activations_live").high
            == result.stats.activation_stats["peak_live"]
        )

    def test_op_latency_histograms_by_label(self):
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        bus = EventBus()
        metrics = attach_metrics(bus)
        SimulatedExecutor(cray_ymp(4), bus=bus).run(
            compiled.graph, registry=reg
        )
        hist = metrics.histogram("op_ticks/convolve")
        assert hist.count == 4
        assert hist.max >= 1000.0  # the registered cost hint

    def test_snapshot_is_json_serializable(self):
        compiled, reg = cow_program()
        bus = EventBus()
        metrics = attach_metrics(bus)
        SequentialExecutor(bus=bus).run(compiled.graph, args=(3,), registry=reg)
        snap = json.loads(json.dumps(metrics.snapshot()))
        assert snap["counters"]["ops_executed"]["value"] > 0
        assert "queue_depth/p0" in snap["series"]

    def test_summary_table_renders(self):
        compiled, reg = cow_program()
        bus = EventBus()
        metrics = attach_metrics(bus)
        SequentialExecutor(bus=bus).run(compiled.graph, args=(3,), registry=reg)
        text = metrics.summary_table(unit="seconds")
        assert "ops_executed" in text
        assert "cow_copies" in text


class TestZeroSubscriberTransparency:
    @pytest.mark.parametrize("mode", ["sequential", "simulated"])
    def test_idle_bus_run_is_identical(self, mode):
        compiled, reg = cow_program()

        def run(bus):
            if mode == "sequential":
                return SequentialExecutor(bus=bus).run(
                    compiled.graph, args=(7,), registry=reg
                )
            return SimulatedExecutor(cray_ymp(4), bus=bus).run(
                compiled.graph, args=(7,), registry=reg
            )

        plain = run(None)
        idle = run(EventBus())  # attached but zero subscribers
        assert idle.value == plain.value
        assert idle.stats == plain.stats
        if mode == "simulated":
            assert idle.ticks == plain.ticks

    def test_subscribed_bus_does_not_perturb_results(self):
        compiled, reg = cow_program()
        plain = SequentialExecutor().run(compiled.graph, args=(7,), registry=reg)
        bus = EventBus()
        attach_metrics(bus)
        observed = SequentialExecutor(bus=bus).run(
            compiled.graph, args=(7,), registry=reg
        )
        assert observed.value == plain.value
        assert observed.stats == plain.stats

    def test_engine_drops_inactive_bus(self):
        from repro.runtime import ExecutionState

        compiled = compile_source("main() incr(0)")
        state = ExecutionState(
            compiled.graph, default_registry(), bus=EventBus()
        )
        assert state.bus is None  # zero-subscriber fast path


class TestEventLogBound:
    def test_default_maxlen(self):
        from repro.obs import EVENT_LOG_MAXLEN

        log = EventLog()
        assert log.maxlen == EVENT_LOG_MAXLEN == 1_048_576

    def test_ring_drops_oldest(self):
        from repro.obs import OpStarted

        log = EventLog(maxlen=4)
        bus = EventBus()
        log.attach(bus)
        for i in range(10):
            bus.emit(OpStarted(float(i), f"op{i}"))
        assert len(log.events) == 4
        assert [e.name for e in log.events] == ["op6", "op7", "op8", "op9"]

    def test_unbounded_opt_out(self):
        log = EventLog(maxlen=None)
        assert log.maxlen is None


class TestBlockEvents:
    def test_observe_blocks_emits_and_restores(self):
        from repro.runtime import get_block_hook

        compiled, reg = cow_program()
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        assert get_block_hook() is None
        with observe_blocks(bus):
            assert get_block_hook() is not None
            SequentialExecutor(bus=bus).run(
                compiled.graph, args=(3,), registry=reg
            )
        assert get_block_hook() is None
        retains = log.of_type(BlockRetained)
        releases = log.of_type(BlockReleased)
        assert retains and releases
        assert all(e.rc >= 0 for e in retains + releases)
        # Reference traffic balances: every retained share is released.
        assert sum(e.n for e in retains) == sum(e.n for e in releases)

    def test_cow_event_attribution(self):
        compiled, reg = cow_program()
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        result = SequentialExecutor(bus=bus).run(
            compiled.graph, args=(3,), registry=reg
        )
        copies = log.of_type(CowCopy)
        assert len(copies) == result.stats.cow_copies
        assert all(e.operator == "bump" for e in copies)
        assert all(e.nbytes > 0 for e in copies)


class TestTracerAsSubscriber:
    def test_sequential_trace_equals_bus_tracer(self):
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        bus = EventBus()
        external = Tracer()
        external.attach(bus)
        result = SequentialExecutor(trace=True, bus=bus).run(
            compiled.graph, registry=reg
        )
        assert result.tracer is not None
        assert result.tracer.records == external.records
        labels = [r.label for r in result.tracer.op_records()]
        assert labels.count("convolve") == 4

    def test_threaded_trace_still_records_ops(self):
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        result = ThreadedExecutor(2, trace=True).run(
            compiled.graph, registry=reg
        )
        labels = [r.label for r in result.tracer.op_records()]
        assert labels.count("convolve") == 4

    def test_aggregation_wrappers_share_one_helper(self):
        t = Tracer()
        t.record("a", "op", 3.0)
        t.record("a", "op", 5.0)
        t.record("b", "call", 2.0)
        assert t.totals_by_label() == {"a": 8.0, "b": 2.0}
        assert t.count_by_label() == {"a": 2, "b": 1}
        assert t.max_by_label() == {"a": 5.0, "b": 2.0}
        assert t.aggregate_by_label(min, float("inf")) == {"a": 3.0, "b": 2.0}


class TestMetricPrimitives:
    def test_counter_labels(self):
        c = Counter("x")
        c.inc()
        c.inc(2.0, label="a")
        assert c.value == 3.0
        assert c.by_label == {"a": 2.0}

    def test_gauge_high_water(self):
        g = Gauge("x")
        g.set(5)
        g.add(-3)
        assert g.value == 2
        assert g.high == 5

    def test_histogram_buckets(self):
        h = Histogram("x", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.max == 50.0
        assert h.mean() == pytest.approx(55.5 / 3)

    def test_series_decimates_but_keeps_endpoints_spread(self):
        s = Series("x", max_samples=8)
        for i in range(1000):
            s.append(float(i), float(i))
        assert len(s.samples) < 8
        ts = [t for t, _ in s.samples]
        assert ts == sorted(ts)
        assert ts[-1] > 750  # recent data survives decimation

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert reg.time_series("d") is reg.time_series("d")
