"""Unparse round-trips and AST utilities, including hypothesis properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import ast, parse_expression, parse_program
from repro.lang.ast import unparse


class TestWalkAndSize:
    def test_size_counts_nodes(self):
        e = parse_expression("f(a, g(b))")
        # Apply(f)(Var a, Apply(g)(Var b)) -> Apply, Var f, Var a, Apply,
        # Var g, Var b = 6
        assert e.size() == 6

    def test_walk_is_preorder(self):
        e = parse_expression("f(a)")
        kinds = [type(n).__name__ for n in e.walk()]
        assert kinds == ["Apply", "Var", "Var"]

    def test_children_of_let(self):
        e = parse_expression("let x = 1 in x")
        child_types = [type(c).__name__ for c in e.children()]
        assert child_types == ["SimpleBinding", "Var"]


class TestRoundTrips:
    @pytest.mark.parametrize(
        "source",
        [
            "main() 1",
            "main() f(1, 2.5, \"s\")",
            "main() NULL",
            "main() <a, b, c>",
            "main() let x = f() in x",
            "main() let <a, b> = split(s) in join(a, b)",
            "main() let sq(x) mul(x, x) in sq(3)",
            "main() if c(1) then 1 else 2",
            "main(n) iterate { i = 0, incr(i) } while is_less(i, n), result i",
            "main() f(g)(h)",
            "main(a, b, c) h(a, b, c)\nh(x, y, z) add(x, add(y, z))",
        ],
    )
    def test_parse_unparse_parse_fixpoint(self, source):
        p1 = parse_program(source)
        p2 = parse_program(unparse(p1))
        assert p1 == p2

    def test_string_escaping_round_trips(self):
        p1 = parse_program('main() f("a\\"b\\\\c")')
        p2 = parse_program(unparse(p1))
        assert p1 == p2

    def test_unparse_unknown_node_raises(self):
        class Weird(ast.Node):
            pass

        with pytest.raises(TypeError):
            unparse(Weird())


# ---------------------------------------------------------------------------
# Property: random expression trees survive unparse -> parse.
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "foo", "bar_1", "scene"])


def _exprs(depth: int) -> st.SearchStrategy[ast.Expr]:
    leaf = st.one_of(
        st.integers(-100, 100).map(lambda v: ast.Literal(value=v)),
        st.just(ast.Null()),
        _names.map(lambda n: ast.Var(name=n)),
    )
    if depth <= 0:
        return leaf

    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.builds(
            lambda callee, args: ast.Apply(
                callee=ast.Var(name=callee), args=args
            ),
            _names,
            st.lists(sub, min_size=0, max_size=3),
        ),
        st.builds(
            lambda c, t, e: ast.If(cond=c, then=t, orelse=e), sub, sub, sub
        ),
        st.builds(lambda items: ast.TupleExpr(items=items),
                  st.lists(sub, min_size=1, max_size=3)),
        st.builds(
            lambda name, rhs, body: ast.Let(
                bindings=[ast.SimpleBinding(name=name, expr=rhs)], body=body
            ),
            _names,
            sub,
            sub,
        ),
    )


class TestUnparseProperty:
    @settings(max_examples=150, deadline=None)
    @given(_exprs(3))
    def test_random_expression_round_trips(self, expr):
        program = ast.Program(
            functions=[ast.FunDef(name="main", params=[], body=expr)]
        )
        assert parse_program(unparse(program)) == program
