"""The operator-fusion pass (ISSUE 3): eligibility, rewrite, round-trip.

Fusion collapses linear chains of cheap single-consumer ``OP`` nodes —
plus a trailing ``untuple`` of a single-consumer producer — into one
super-node carrying the full recipe, so the engine pays one dispatch
where the source graph paid several.  These tests pin the eligibility
rules, the in-place rewrite, serialization, cache keying, observability,
and bit-identical execution across every executor.
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.compiler.passes.pipeline import (
    FULL_PASS_ORDER,
    GRAPH_PASS_ORDER,
    PASS_ORDER,
    split_passes,
)
from repro.graph.ir import NodeKind
from repro.graph.serialize import dumps, loads
from repro.machine import SimulatedExecutor, uniform
from repro.obs import EventBus, EventLog, OperatorsFused, OpStarted, attach_metrics
from repro.runtime import (
    ProcessExecutor,
    SequentialExecutor,
    ThreadedExecutor,
    default_registry,
)

FUSED_PASSES = PASS_ORDER + ("fuse",)

#: Chain incr -> decr (decr's output is consumed twice by mul, so the
#: chain stops there); mul is the template result.
CHAIN_SOURCE = """
main(x)
  let a = incr(x)
      b = decr(a)
  in mul(b, b)
"""


def _registry():
    reg = default_registry()

    @reg.register(name="expensive", cost=1e6)
    def expensive(x):
        return x * 10

    @reg.register(name="poke", modifies=(0,), cost=1.0)
    def poke(lst):
        lst[0] += 1
        return lst

    @reg.register(name="mklist", cost=1.0)
    def mklist(x):
        return [x, x]

    @reg.register(name="split2", cost=1.0)
    def split2(x):
        return (x + 1, x - 1)

    return reg


REGISTRY = _registry()


def _fused_nodes(graph):
    return [
        (name, node_id, node)
        for name, t in graph.templates.items()
        for node_id, node in enumerate(t.nodes)
        if node.fused is not None
    ]


def _compile(source, passes=FUSED_PASSES):
    return compile_source(source, registry=REGISTRY, optimize_passes=passes)


class TestEligibility:
    def test_linear_chain_fused(self):
        fused = _compile(CHAIN_SOURCE)
        nodes = _fused_nodes(fused.graph)
        assert len(nodes) == 1
        steps, untuple_n = nodes[0][2].fused
        assert [s[0] for s in steps] == ["incr", "decr"]
        assert untuple_n == 0
        assert fused.optimization.stats["fuse.chains_fused"] == 1

    def test_three_node_chain_single_super_node(self):
        src = "main(x)\n  let a = incr(x)\n      b = decr(a)\n  in incr(b)"
        fused = _compile(src)
        nodes = _fused_nodes(fused.graph)
        assert len(nodes) == 1
        steps, _ = nodes[0][2].fused
        assert [s[0] for s in steps] == ["incr", "decr", "incr"]

    def test_expensive_operator_breaks_chain(self):
        src = (
            "main(x)\n  let a = incr(x)\n      b = expensive(a)\n"
            "  in incr(b)"
        )
        fused = _compile(src)
        assert _fused_nodes(fused.graph) == []

    def test_modifying_operator_breaks_chain(self):
        src = (
            "main(x)\n  let a = mklist(x)\n      b = poke(a)\n"
            "  in sum_list(b)"
        )
        reg = _registry()

        @reg.register(name="sum_list", cost=1.0)
        def sum_list(lst):
            return sum(lst)

        fused = compile_source(src, registry=reg, optimize_passes=FUSED_PASSES)
        for _, _, node in _fused_nodes(fused.graph):
            assert all(s[0] != "poke" for s in node.fused[0])

    def test_fan_out_breaks_chain(self):
        # a feeds two distinct consumers (decr and incr), and b/c each
        # feed mul twice — none of those links may fuse.  (mul -> add is
        # still a legal chain elsewhere in the graph.)
        src = (
            "main(x)\n  let a = incr(x)\n      b = decr(a)\n"
            "      c = incr(a)\n  in add(mul(b, b), mul(c, c))"
        )
        fused = _compile(src)
        for _, _, node in _fused_nodes(fused.graph):
            step_names = [s[0] for s in node.fused[0]]
            assert "incr" not in step_names
            assert "decr" not in step_names

    def test_untuple_of_op_absorbed(self):
        src = "main(x)\n  let <a, b> = split2(x)\n  in add(a, b)"
        fused = _compile(src)
        nodes = _fused_nodes(fused.graph)
        assert len(nodes) == 1
        steps, untuple_n = nodes[0][2].fused
        assert [s[0] for s in steps] == ["split2"]
        assert untuple_n == 2
        assert nodes[0][2].n_outputs == 2
        assert fused.optimization.stats["fuse.untuples_absorbed"] == 1

    def test_chain_into_result_node_fused(self):
        # The chain tail is the template result; the rewrite is in place,
        # so the result port stays valid.
        src = "main(x) incr(decr(x))"
        fused = _compile(src)
        nodes = _fused_nodes(fused.graph)
        assert len(nodes) == 1
        value = SequentialExecutor().run(
            fused.graph, args=(5,), registry=REGISTRY
        ).value
        assert value == 5  # incr(decr(5))


class TestPipelineOrdering:
    def test_fuse_is_graph_level(self):
        assert GRAPH_PASS_ORDER == ("fuse", "donate", "codegen", "batch")
        assert "fuse" not in PASS_ORDER
        assert "donate" not in PASS_ORDER
        assert "codegen" not in PASS_ORDER
        assert "batch" not in PASS_ORDER
        assert FULL_PASS_ORDER == PASS_ORDER + (
            "fuse",
            "donate",
            "codegen",
            "batch",
        )

    def test_split_passes_partitions(self):
        ast_passes, graph_passes = split_passes(
            ("inline", "fuse", "constprop")
        )
        assert ast_passes == ("inline", "constprop")
        assert graph_passes == ("fuse",)
        assert split_passes(()) == ((), ())
        assert split_passes(("fuse",)) == ((), ("fuse",))

    def test_report_records_fuse(self):
        fused = _compile(CHAIN_SOURCE)
        assert "fuse" in fused.optimization.enabled
        assert fused.optimization.stats["fuse.ops_fused"] == 2

    def test_default_compile_does_not_fuse(self):
        plain = compile_source(CHAIN_SOURCE, registry=REGISTRY)
        assert _fused_nodes(plain.graph) == []


class TestSerialization:
    def test_fused_graph_round_trips(self):
        fused = _compile(CHAIN_SOURCE)
        text = dumps(fused.graph)
        restored = loads(text)
        assert dumps(restored) == text
        nodes = _fused_nodes(restored)
        assert len(nodes) == 1
        assert nodes[0][2].fused == _fused_nodes(fused.graph)[0][2].fused

    def test_untuple_fusion_round_trips(self):
        src = "main(x)\n  let <a, b> = split2(x)\n  in add(a, b)"
        fused = _compile(src)
        restored = loads(dumps(fused.graph))
        assert _fused_nodes(restored)[0][2].fused[1] == 2

    def test_unfused_dump_is_bit_identical_to_pre_fusion_format(self):
        # --no-fuse must reproduce today's graphs bit-for-bit: an unfused
        # compile emits no "fused" keys and survives a round trip exactly.
        plain = compile_source(CHAIN_SOURCE, registry=REGISTRY)
        text = dumps(plain.graph)
        assert '"fused"' not in text
        assert dumps(loads(text)) == text


class TestCacheKeys:
    def test_fused_and_unfused_keys_differ(self):
        from repro.tools.cache import cache_key

        plain = cache_key(CHAIN_SOURCE, passes=PASS_ORDER)
        fused = cache_key(CHAIN_SOURCE, passes=FUSED_PASSES)
        assert plain != fused


class TestDescribe:
    def test_describe_shows_recipe(self):
        fused = _compile(CHAIN_SOURCE)
        text = fused.graph.templates["main"].describe()
        assert "fused=[incr>decr]" in text

    def test_describe_shows_untuple(self):
        src = "main(x)\n  let <a, b> = split2(x)\n  in add(a, b)"
        fused = _compile(src)
        text = fused.graph.templates["main"].describe()
        assert "fused=[split2>untuple2]" in text


class TestExecution:
    SRC = (
        "main(x)\n"
        "  let a = incr(x)\n"
        "      b = decr(a)\n"
        "      <p, q> = split2(b)\n"
        "      c = mul(p, q)\n"
        "  in add(c, b)"
    )

    def _both(self):
        plain = compile_source(self.SRC, registry=REGISTRY)
        fused = _compile(self.SRC)
        assert _fused_nodes(fused.graph)
        return plain, fused

    def test_sequential_matches(self):
        plain, fused = self._both()
        for n in (-3, 0, 7):
            ref = SequentialExecutor().run(
                plain.graph, args=(n,), registry=REGISTRY
            )
            got = SequentialExecutor().run(
                fused.graph, args=(n,), registry=REGISTRY
            )
            assert got.value == ref.value
            assert got.stats.tasks_fired < ref.stats.tasks_fired
            assert got.stats.fused_fires > 0
            assert got.stats.fused_ops_saved > 0

    def test_threaded_matches(self):
        plain, fused = self._both()
        ref = SequentialExecutor().run(
            plain.graph, args=(4,), registry=REGISTRY
        ).value
        for workers in (1, 2, 4):
            got = ThreadedExecutor(workers).run(
                fused.graph, args=(4,), registry=REGISTRY
            ).value
            assert got == ref

    def test_process_matches_with_forced_dispatch(self):
        # cost_threshold=0 ships every fire — including fused super-nodes,
        # whose recipes workers recompose from the program's fused chains.
        plain, fused = self._both()
        ref = SequentialExecutor().run(
            plain.graph, args=(4,), registry=REGISTRY
        ).value
        got = ProcessExecutor(2, cost_threshold=0.0).run(
            fused.graph, args=(4,), registry=REGISTRY
        ).value
        assert got == ref

    def test_simulator_matches(self):
        plain, fused = self._both()
        ref = SimulatedExecutor(uniform(4)).run(
            plain.graph, args=(4,), registry=REGISTRY
        )
        got = SimulatedExecutor(uniform(4)).run(
            fused.graph, args=(4,), registry=REGISTRY
        )
        assert got.value == ref.value


class TestObservability:
    def test_operators_fused_event_and_fused_ops(self):
        fused = _compile(CHAIN_SOURCE)
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        SequentialExecutor(bus=bus).run(
            fused.graph, args=(3,), registry=REGISTRY
        )
        fused_events = [e for e in log.events if isinstance(e, OperatorsFused)]
        assert len(fused_events) == 1
        assert fused_events[0].fused_nodes == 1
        assert fused_events[0].ops_absorbed == 2
        started = [e for e in log.events if isinstance(e, OpStarted)]
        assert any(e.fused_ops == 2 for e in started)
        assert all(e.fused_ops == 1 for e in started if "fused" not in e.name)

    def test_metrics_counters(self):
        fused = _compile(CHAIN_SOURCE)
        bus = EventBus()
        metrics = attach_metrics(bus)
        SequentialExecutor(bus=bus).run(
            fused.graph, args=(3,), registry=REGISTRY
        )
        snap = metrics.snapshot()
        assert snap["counters"]["fused_fires"]["value"] == 1
        assert snap["counters"]["fused_ops_saved"]["value"] == 1
        assert snap["gauges"]["fused_nodes"]["value"] == 1
        assert snap["gauges"]["fused_ops_absorbed"]["value"] == 2

    def test_unfused_run_emits_no_fusion_event(self):
        plain = compile_source(CHAIN_SOURCE, registry=REGISTRY)
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        SequentialExecutor(bus=bus).run(
            plain.graph, args=(3,), registry=REGISTRY
        )
        assert not [e for e in log.events if isinstance(e, OperatorsFused)]


class TestErrors:
    def test_fused_untuple_arity_mismatch_raises(self):
        reg = _registry()

        @reg.register(name="bad3", cost=1.0)
        def bad3(x):
            return (x, x, x)

        src = "main(x)\n  let <a, b> = bad3(x)\n  in add(a, b)"
        fused = compile_source(src, registry=reg, optimize_passes=FUSED_PASSES)
        assert _fused_nodes(fused.graph)
        from repro.errors import RuntimeFailure

        with pytest.raises(RuntimeFailure, match="decomposed into"):
            SequentialExecutor().run(fused.graph, args=(1,), registry=reg)
