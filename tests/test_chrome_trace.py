"""Chrome/Perfetto trace export: schema validity for real and simulated
runs, track structure, and the ``delirium trace`` CLI."""

import json
import subprocess
import sys

import pytest

from repro import compile_source
from repro.machine import SimulatedExecutor, cray_2, cray_ymp
from repro.obs import (
    ChromeTraceCollector,
    EventBus,
    TICK_SCALE,
    WALL_SCALE,
    attach_metrics,
    validate_trace,
)
from repro.runtime import SequentialExecutor, Tracer

from tests.conftest import FIB_SRC, FORK_JOIN_SRC, fork_join_registry

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


def collect(executor_factory, compiled, registry=None, args=(),
            time_scale=WALL_SCALE):
    bus = EventBus()
    collector = ChromeTraceCollector(time_scale=time_scale)
    collector.attach(bus)
    result = executor_factory(bus).run(
        compiled.graph, args=args, registry=registry
    )
    return collector, result


class TestRealExecutorTrace:
    def test_schema_valid(self):
        compiled = compile_source(FIB_SRC)
        collector, _ = collect(
            lambda bus: SequentialExecutor(bus=bus), compiled, args=(8,)
        )
        trace = collector.to_dict()
        assert validate_trace(trace) == []
        events = trace["traceEvents"]
        assert events, "empty trace"
        for ev in events:
            for key in REQUIRED_KEYS:
                assert key in ev

    def test_be_nesting_is_monotonic_per_track(self):
        compiled = compile_source(FIB_SRC)
        collector, _ = collect(
            lambda bus: SequentialExecutor(bus=bus), compiled, args=(8,)
        )
        events = collector.trace_events()
        depth = 0
        last_ts = float("-inf")
        for ev in events:
            if ev["ph"] not in ("B", "E"):
                continue
            assert ev["ts"] >= last_ts
            last_ts = ev["ts"]
            depth += 1 if ev["ph"] == "B" else -1
            assert depth in (0, 1)
        assert depth == 0

    def test_span_count_matches_tasks_fired(self):
        compiled = compile_source(FIB_SRC)
        collector, result = collect(
            lambda bus: SequentialExecutor(bus=bus), compiled, args=(8,)
        )
        begins = [e for e in collector.trace_events() if e["ph"] == "B"]
        assert len(begins) == result.stats.tasks_fired

    def test_json_round_trip(self):
        compiled = compile_source(FIB_SRC)
        collector, _ = collect(
            lambda bus: SequentialExecutor(bus=bus), compiled, args=(6,)
        )
        loaded = json.loads(collector.to_json())
        assert loaded["traceEvents"]
        assert loaded["otherData"]["time_scale"] == WALL_SCALE


class TestSimulatedTrace:
    def _collect(self, processors=4):
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        return collect(
            lambda bus: SimulatedExecutor(cray_2(processors), bus=bus),
            compiled,
            registry=reg,
            time_scale=TICK_SCALE,
        )

    def test_schema_valid(self):
        collector, _ = self._collect()
        assert validate_trace(collector.to_dict()) == []

    def test_one_track_per_simulated_processor(self):
        collector, _ = self._collect(processors=4)
        events = collector.trace_events()
        span_tids = {e["tid"] for e in events if e["ph"] == "B"}
        assert span_tids <= set(range(4))
        # The fork-join's four convolutions spread over several processors.
        assert len(span_tids) > 1
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert span_tids <= set(thread_names)

    def test_counter_events_present(self):
        collector, _ = self._collect()
        counters = [
            e for e in collector.trace_events() if e["ph"] == "C"
        ]
        assert counters
        assert all("p0" in e["args"] for e in counters)

    def test_tick_timestamps_match_makespan(self):
        collector, result = self._collect()
        ends = [
            e["ts"] for e in collector.trace_events() if e["ph"] == "E"
        ]
        assert max(ends) == pytest.approx(result.ticks)


class TestFromTracer:
    def test_export_from_hand_built_tracer(self):
        t = Tracer()
        t.record("convol_bite", "op", 100.0, start=0.0, processor=0)
        t.record("post_up", "op", 400.0, start=100.0, processor=1)
        collector = ChromeTraceCollector.from_tracer(t)
        trace = collector.to_dict()
        assert validate_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "B"}
        assert names == {"convol_bite", "post_up"}


class TestOptimizedProcessTrace:
    """Traces stay schema-valid when fusion and donation reshape the
    graph and the process executor spreads firings over workers."""

    SMALL = None  # built lazily: retina imports are heavier than most

    @classmethod
    def _compiled(cls, donate):
        from repro.apps.retina import RetinaConfig, compile_retina

        if cls.SMALL is None:
            cls.SMALL = RetinaConfig(height=32, width=32, num_iter=2)
        return compile_retina(2, cls.SMALL, fuse=True, donate=donate)

    @pytest.mark.parametrize("donate", [False, True])
    def test_fused_process_run_trace_validates(self, donate):
        from repro.runtime import ProcessExecutor

        compiled = self._compiled(donate)
        collector, result = collect(
            lambda bus: ProcessExecutor(2, bus=bus),
            compiled,
            registry=compiled.registry,
        )
        assert result.stats.fused_fires > 0, "fusion must actually engage"
        trace = collector.to_dict()
        assert validate_trace(trace) == []
        begins = [e for e in trace["traceEvents"] if e["ph"] == "B"]
        assert len(begins) == result.stats.tasks_fired

    def test_worker_spans_land_on_worker_tracks(self):
        from repro.runtime import ProcessExecutor

        compiled = self._compiled(True)
        collector, _ = collect(
            lambda bus: ProcessExecutor(2, bus=bus, cost_threshold=0.0),
            compiled,
            registry=compiled.registry,
        )
        tids = {
            e["tid"]
            for e in collector.trace_events()
            if e["ph"] == "B"
        }
        # Dispatched bodies draw on worker tracks (>= 1), and the
        # engine's own firings keep track 0.
        assert any(tid >= 1 for tid in tids)


class TestValidateTrace:
    def test_flags_missing_keys(self):
        problems = validate_trace({"traceEvents": [{"ph": "B", "ts": 0}]})
        assert any("missing key" in p for p in problems)

    def test_flags_unbalanced_nesting(self):
        events = [
            {"ph": "B", "ts": 0, "pid": 0, "tid": 0, "name": "x"},
        ]
        problems = validate_trace({"traceEvents": events})
        assert any("unclosed" in p for p in problems)

    def test_flags_backwards_time(self):
        events = [
            {"ph": "B", "ts": 5, "pid": 0, "tid": 0, "name": "x"},
            {"ph": "E", "ts": 1, "pid": 0, "tid": 0, "name": "x"},
        ]
        problems = validate_trace({"traceEvents": events})
        assert any("backwards" in p for p in problems)


class TestTraceCLI:
    SOURCE = (
        "main(n) add(fib(n), 1)\n"
        "fib(n)\n"
        "  if is_less(n, 2)\n"
        "  then n\n"
        "  else add(fib(sub(n, 1)), fib(sub(n, 2)))\n"
    )

    def _source(self, tmp_path):
        path = tmp_path / "prog.dlm"
        path.write_text(self.SOURCE)
        return str(path)

    def _cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.tools.cli", *args],
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_trace_sequential_writes_valid_trace(self, tmp_path):
        src = self._source(tmp_path)
        out = str(tmp_path / "out.trace.json")
        proc = self._cli("trace", src, "--arg", "8", "-o", out)
        assert proc.returncode == 0, proc.stderr
        assert "call of" in proc.stdout  # the §5.2 bottleneck view
        assert "ops_executed" in proc.stdout  # metrics summary table
        with open(out) as fh:
            trace = json.load(fh)
        assert validate_trace(trace) == []

    def test_trace_simulated_machine(self, tmp_path):
        src = self._source(tmp_path)
        out = str(tmp_path / "sim.trace.json")
        proc = self._cli(
            "trace", src, "--arg", "8", "--machine", "cray-ymp",
            "-p", "4", "-o", out,
        )
        assert proc.returncode == 0, proc.stderr
        with open(out) as fh:
            trace = json.load(fh)
        assert validate_trace(trace) == []
        tids = {
            e["tid"] for e in trace["traceEvents"] if e.get("ph") == "B"
        }
        assert tids <= set(range(4)) and len(tids) > 1

    def test_trace_default_output_path(self, tmp_path):
        src = self._source(tmp_path)
        proc = self._cli("trace", src, "--arg", "6")
        assert proc.returncode == 0, proc.stderr
        expected = str(tmp_path / "prog.trace.json")
        with open(expected) as fh:
            assert validate_trace(json.load(fh)) == []

    def test_trace_json_flag(self, tmp_path):
        src = self._source(tmp_path)
        out = str(tmp_path / "out.trace.json")
        proc = self._cli("trace", src, "--arg", "6", "-o", out, "--json")
        assert proc.returncode == 0, proc.stderr
        snap = json.loads(proc.stdout)
        assert snap["counters"]["ops_executed"]["value"] > 0

    def test_profile_json_flag(self, tmp_path):
        src = self._source(tmp_path)
        proc = self._cli("profile", src, "--arg", "6", "-p", "2", "--json")
        assert proc.returncode == 0, proc.stderr
        snap = json.loads(proc.stdout)
        assert snap["counters"]["tasks_fired"]["value"] > 0
        assert "histograms" in snap


class TestBottleneckView:
    def test_simulated_trace_reproduces_sec52_report(self):
        """The acceptance scenario: metrics + trace from one run expose
        the dominant operator, paper-style."""
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        bus = EventBus()
        metrics = attach_metrics(bus)
        collector = ChromeTraceCollector(time_scale=TICK_SCALE)
        collector.attach(bus)
        result = SimulatedExecutor(cray_ymp(4), trace=True, bus=bus).run(
            compiled.graph, registry=reg
        )
        # Tracer (tools) and metrics (registry) agree on the bottleneck.
        from repro.tools import node_timing_report

        report = node_timing_report(result.tracer)
        assert "call of convolve took" in report
        hist = metrics.histogram("op_ticks/convolve")
        assert hist.count == 4
        totals = {
            name: h.sum
            for name, h in metrics.histograms.items()
            if name.startswith("op_ticks/")
        }
        assert max(totals, key=totals.get) == "op_ticks/convolve"
        assert validate_trace(collector.to_dict()) == []
