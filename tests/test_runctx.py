"""Run-scoped observability contexts: isolation, brackets, snapshots.

The server-mode prerequisite (ROADMAP item 1): many runs in one process,
each observing exactly its own events and metrics.  The acceptance test
here drives two contexts concurrently and proves full disjointness.
"""

import threading

import pytest

from repro import OperatorError, compile_source, default_registry
from repro.obs import (
    RunContext,
    RunFinished,
    RunStarted,
    next_run_id,
)
from repro.runtime import (
    ProcessExecutor,
    SequentialExecutor,
    ThreadedExecutor,
)

from tests.conftest import FIB_SRC


def _boom_registry():
    reg = default_registry()

    @reg.register(name="boom")
    def boom(x):
        raise ValueError(f"kaboom {x}")

    return reg


class TestRunIds:
    def test_generated_ids_unique(self):
        ids = {next_run_id() for _ in range(64)}
        assert len(ids) == 64

    def test_explicit_id_kept(self):
        ctx = RunContext("job-7", flight_recorder=False)
        assert ctx.run_id == "job-7"


class TestRunBracket:
    def _events(self, ctx):
        assert ctx.log is not None
        return list(ctx.log.events)

    def test_started_and_finished_emitted(self, tmp_path):
        compiled = compile_source(FIB_SRC)
        ctx = RunContext(
            record_events=True, flightrec_dir=str(tmp_path)
        )
        result = SequentialExecutor(run_ctx=ctx).run(
            compiled.graph, args=(8,)
        )
        events = self._events(ctx)
        started = [e for e in events if isinstance(e, RunStarted)]
        finished = [e for e in events if isinstance(e, RunFinished)]
        assert len(started) == len(finished) == 1
        assert started[0].run_id == ctx.run_id
        assert started[0].executor == "sequential"
        assert finished[0].ok
        assert finished[0].wall_seconds == pytest.approx(
            result.wall_seconds, rel=0.5
        )
        # RunStarted precedes every task event; RunFinished follows them.
        assert isinstance(events[0], RunStarted)
        assert isinstance(events[-1], RunFinished)

    @pytest.mark.parametrize("executor_name", ["threaded", "process"])
    def test_other_executors_bracket_too(self, executor_name, tmp_path):
        compiled = compile_source(FIB_SRC)
        ctx = RunContext(
            record_events=True, flightrec_dir=str(tmp_path)
        )
        cls = {
            "threaded": ThreadedExecutor,
            "process": ProcessExecutor,
        }[executor_name]
        cls(2, run_ctx=ctx).run(compiled.graph, args=(8,))
        events = self._events(ctx)
        started = [e for e in events if isinstance(e, RunStarted)]
        finished = [e for e in events if isinstance(e, RunFinished)]
        assert [e.executor for e in started] == [executor_name]
        assert [e.ok for e in finished] == [True]

    def test_failed_run_emits_failed_finish_and_dumps(self, tmp_path):
        reg = _boom_registry()
        compiled = compile_source("main(n) boom(n)", registry=reg)
        ctx = RunContext(
            "failing-run",
            record_events=True,
            flightrec_dir=str(tmp_path),
        )
        with pytest.raises(OperatorError):
            SequentialExecutor(run_ctx=ctx).run(
                compiled.graph, args=(3,), registry=reg
            )
        finished = [
            e for e in self._events(ctx) if isinstance(e, RunFinished)
        ]
        assert len(finished) == 1 and not finished[0].ok
        dump = tmp_path / "failing-run.flightrec.json"
        assert dump.exists()
        assert ctx.flightrec is not None and ctx.flightrec.dumps == 1

    def test_explicit_bus_wins_over_context(self, tmp_path):
        # An executor given both a bus and a run_ctx sends task events to
        # the explicit bus (legacy wiring stays intact); the context keeps
        # only its own run bracket.
        from repro.obs import EventBus, EventLog

        compiled = compile_source(FIB_SRC)
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        ctx = RunContext(
            record_events=True, flightrec_dir=str(tmp_path)
        )
        SequentialExecutor(bus=bus, run_ctx=ctx).run(
            compiled.graph, args=(6,)
        )
        assert log.events
        assert all(
            isinstance(e, (RunStarted, RunFinished))
            for e in ctx.log.events
        )


class TestSnapshots:
    def test_snapshot_sources_registered(self, tmp_path):
        compiled = compile_source(FIB_SRC)
        ctx = RunContext(flightrec_dir=str(tmp_path))
        SequentialExecutor(run_ctx=ctx).run(compiled.graph, args=(8,))
        snap = ctx.snapshot()
        assert snap["run_id"] == ctx.run_id
        assert snap["engine"]["finished"] is True
        assert snap["engine"]["tasks_fired"] > 0
        assert snap["ready_queue"]["depths"] == (0, 0, 0)

    def test_process_snapshot_includes_supervisor_and_workers(
        self, tmp_path
    ):
        compiled = compile_source(FIB_SRC)
        ctx = RunContext(flightrec_dir=str(tmp_path))
        ProcessExecutor(2, run_ctx=ctx).run(compiled.graph, args=(8,))
        snap = ctx.snapshot()
        assert snap["supervisor"]["in_flight"] == 0
        assert "respawns" in snap["workers"]

    def test_health_document(self, tmp_path):
        compiled = compile_source(FIB_SRC)
        ctx = RunContext("healthy", flightrec_dir=str(tmp_path))
        SequentialExecutor(run_ctx=ctx).run(compiled.graph, args=(6,))
        doc = ctx.health()
        assert doc["run_id"] == "healthy"
        assert doc["executor"] == "sequential"
        assert doc["flightrec_dumps"] == 0


class TestConcurrentIsolation:
    """Acceptance: two concurrent contexts share nothing."""

    def test_two_concurrent_runs_fully_disjoint(self, tmp_path):
        compiled = compile_source(FIB_SRC)
        ctx_a = RunContext(
            "run-a", record_events=True, flightrec_dir=str(tmp_path)
        )
        ctx_b = RunContext(
            "run-b", record_events=True, flightrec_dir=str(tmp_path)
        )
        results = {}
        barrier = threading.Barrier(2)

        def drive(name, ctx, n):
            barrier.wait()
            results[name] = SequentialExecutor(run_ctx=ctx).run(
                compiled.graph, args=(n,)
            )

        threads = [
            threading.Thread(target=drive, args=("a", ctx_a, 10)),
            threading.Thread(target=drive, args=("b", ctx_b, 7)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Structural isolation: no shared bus, registry, or event object.
        assert ctx_a.bus is not ctx_b.bus
        assert ctx_a.metrics is not ctx_b.metrics
        ids_a = {id(e) for e in ctx_a.log.events}
        ids_b = {id(e) for e in ctx_b.log.events}
        assert not (ids_a & ids_b)

        # Each stream names only its own run.
        for ctx, expected in ((ctx_a, "run-a"), (ctx_b, "run-b")):
            run_ids = {
                e.run_id
                for e in ctx.log.events
                if isinstance(e, (RunStarted, RunFinished))
            }
            assert run_ids == {expected}

        # Each registry counted exactly its own run's work, even though
        # both runs interleaved on one process.
        assert results["a"].value == 55 and results["b"].value == 13
        for name, ctx in (("a", ctx_a), ("b", ctx_b)):
            stats = results[name].stats
            assert (
                ctx.metrics.counter("tasks_fired").value
                == stats.tasks_fired
            )
            assert (
                ctx.metrics.counter("ops_executed").value
                == stats.ops_executed
            )
        assert (
            results["a"].stats.tasks_fired
            != results["b"].stats.tasks_fired
        ), "sanity: the two workloads must differ for the test to bite"
