"""Hypothesis chaos properties: injected faults never change the answer.

The fault-tolerance argument of ISSUE 5 in property form.  Delirium's
single-assignment semantics make re-execution of a failed firing safe by
construction, so a run with deterministic fault injection — operator
exceptions, delays, SIGKILLed workers, arena allocation failures — must
be *bit-identical* to the fault-free run, under every executor, worker
count, fusion setting, and donation setting.  The generated programs
deliberately share mutable blocks across destructive bumps (the
adversarial case for any re-fire path).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import compile_source
from repro.faults import parse_fault_spec
from repro.runtime import (
    FaultPolicy,
    ProcessExecutor,
    SequentialExecutor,
    ThreadedExecutor,
)

from tests.test_properties import REGISTRY, _programs


def _passes(fuse: bool, donate: bool):
    from repro.compiler.passes.pipeline import PASS_ORDER

    extra = ()
    if fuse:
        extra += ("fuse",)
    if donate:
        extra += ("donate",)
    return PASS_ORDER + extra


def _compile(source, fuse, donate):
    return compile_source(
        source, registry=REGISTRY, optimize_passes=_passes(fuse, donate)
    )


def _reference(compiled, n):
    return SequentialExecutor().run(
        compiled.graph, args=(n,), registry=REGISTRY
    ).value


#: Fault cocktails exercising every injection kind.  Probabilities are
#: high enough to fire on nearly every generated program; retries and the
#: respawn budget absorb them.
_FAULT_SPECS = st.sampled_from(
    [
        "raise:p=0.3,seed=5",
        "raise:op=bump,p=0.5,seed=9",
        "kill:p=0.1,seed=3",
        "kill:op=blk_sum,nth=1",
        "arena:p=0.5,seed=2",
        "raise:p=0.2,seed=1;kill:p=0.05,seed=4;arena:p=0.3,seed=6",
    ]
)

#: Generous budgets: the property under test is result *identity*, not
#: bounded retries — with deterministic per-count hashing, a p=0.3 clause
#: will occasionally fire on several consecutive counts, and a tight
#: retry budget would turn that legitimate retry streak into a poison
#: error (0.3**26 makes that effectively impossible here; the poison
#: path itself is covered in test_supervise.py).
_POLICY = FaultPolicy(max_retries=25, backoff=0.0, max_respawns=200)


class TestChaosEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.booleans(),
        st.booleans(),
        _FAULT_SPECS,
    )
    def test_sequential_chaos_matches(self, source, n, fuse, donate, faults):
        compiled = _compile(source, fuse, donate)
        reference = _reference(compiled, n)
        chaotic = SequentialExecutor(
            fault_policy=_POLICY, fault_spec=parse_fault_spec(faults)
        ).run(compiled.graph, args=(n,), registry=REGISTRY).value
        assert chaotic == reference

    @settings(max_examples=10, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.booleans(),
        st.booleans(),
        st.integers(1, 4),
        _FAULT_SPECS,
    )
    def test_threaded_chaos_matches(
        self, source, n, fuse, donate, workers, faults
    ):
        compiled = _compile(source, fuse, donate)
        reference = _reference(compiled, n)
        chaotic = ThreadedExecutor(
            workers,
            fault_policy=_POLICY,
            fault_spec=parse_fault_spec(faults),
        ).run(compiled.graph, args=(n,), registry=REGISTRY).value
        assert chaotic == reference

    @settings(max_examples=6, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.booleans(),
        st.booleans(),
        st.integers(1, 3),
        st.integers(0, 100),
        _FAULT_SPECS,
    )
    def test_process_chaos_matches(
        self, source, n, fuse, donate, workers, seed, faults
    ):
        # The full tentpole claim: operator bodies in other processes,
        # every fire force-dispatched, workers crashing and respawning —
        # still bit-identical under any worker count, scheduling seed,
        # fusion setting, and donation setting.
        compiled = _compile(source, fuse, donate)
        reference = _reference(compiled, n)
        result = ProcessExecutor(
            workers,
            cost_threshold=0.0,
            shm_threshold=256,
            seed=seed,
            fault_policy=_POLICY,
            fault_spec=parse_fault_spec(faults),
        ).run(compiled.graph, args=(n,), registry=REGISTRY)
        assert result.value == reference

    @settings(max_examples=6, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.integers(1, 3),
    )
    def test_forced_degradation_matches(self, source, n, workers):
        # Kill every worker instantly with no respawn budget: the run
        # must finish inline through the degradation ladder, bit-identical.
        compiled = _compile(source, True, True)
        reference = _reference(compiled, n)
        result = ProcessExecutor(
            workers,
            cost_threshold=0.0,
            shm_threshold=256,
            fault_policy=FaultPolicy(
                max_retries=1, backoff=0.0, max_respawns=0
            ),
            fault_spec=parse_fault_spec("kill:p=1.0"),
        ).run(compiled.graph, args=(n,), registry=REGISTRY)
        assert result.value == reference
        assert result.stats.executor_degraded >= 1
