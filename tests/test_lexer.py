"""Unit tests for the Delirium scanner."""

import pytest

from repro.errors import LexError
from repro.lang import Token, TokenKind, tokenize


def kinds(source: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(source)]


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_is_just_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_integer_literal(self):
        tok = tokenize("42")[0]
        assert tok.kind is TokenKind.INT
        assert tok.value == 42

    def test_float_literal(self):
        tok = tokenize("3.25")[0]
        assert tok.kind is TokenKind.FLOAT
        assert tok.value == 3.25

    def test_float_with_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025
        assert tokenize("7E+1")[0].value == 70.0

    def test_string_literal_double_quotes(self):
        tok = tokenize('"hello world"')[0]
        assert tok.kind is TokenKind.STRING
        assert tok.value == "hello world"

    def test_string_literal_single_quotes(self):
        assert tokenize("'abc'")[0].value == "abc"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb\tc\\d\"e"')[0].value == 'a\nb\tc\\d"e'

    def test_identifier(self):
        tok = tokenize("convol_bite")[0]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "convol_bite"

    def test_identifier_with_dollar_inside(self):
        # Compiler-generated names survive re-lexing.
        tok = tokenize("loop$1")[0]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "loop$1"

    def test_do_is_not_a_keyword(self):
        # The paper's retina listing binds a variable named `do`.
        tok = tokenize("do")[0]
        assert tok.kind is TokenKind.IDENT


class TestKeywords:
    @pytest.mark.parametrize(
        "word,kind",
        [
            ("let", TokenKind.LET),
            ("in", TokenKind.IN),
            ("if", TokenKind.IF),
            ("then", TokenKind.THEN),
            ("else", TokenKind.ELSE),
            ("iterate", TokenKind.ITERATE),
            ("while", TokenKind.WHILE),
            ("result", TokenKind.RESULT),
            ("NULL", TokenKind.NULL),
        ],
    )
    def test_keyword(self, word, kind):
        assert tokenize(word)[0].kind is kind

    def test_null_is_case_sensitive(self):
        assert tokenize("null")[0].kind is TokenKind.IDENT
        assert tokenize("Null")[0].kind is TokenKind.IDENT

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("letter")[0].kind is TokenKind.IDENT
        assert tokenize("iterate_fast")[0].kind is TokenKind.IDENT


class TestPunctuation:
    def test_all_punctuation(self):
        assert kinds("( ) { } < > , =")[:-1] == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LANGLE,
            TokenKind.RANGLE,
            TokenKind.COMMA,
            TokenKind.EQUALS,
        ]

    def test_tuple_binding_tokens(self):
        assert texts("<a,b,c,d>=target_split(scene)") == [
            "<", "a", ",", "b", ",", "c", ",", "d", ">", "=",
            "target_split", "(", "scene", ")",
        ]


class TestCommentsAndWhitespace:
    def test_hash_comment(self):
        assert kinds("a # comment here\nb") == [
            TokenKind.IDENT, TokenKind.IDENT, TokenKind.EOF
        ]

    def test_dash_dash_comment(self):
        assert kinds("a -- comment\nb") == [
            TokenKind.IDENT, TokenKind.IDENT, TokenKind.EOF
        ]

    def test_whitespace_insensitive(self):
        assert texts("f(a,b)") == texts("f (\n  a ,\tb\n)")


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_first_line_offset_for_chunked_lexing(self):
        toks = tokenize("x", first_line=42)
        assert toks[0].line == 42


class TestLexErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"never closed')

    def test_error_carries_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ok\n  %")
        assert excinfo.value.line == 2

    def test_malformed_exponent(self):
        with pytest.raises(LexError):
            tokenize("1e+")


class TestTokenRepr:
    def test_token_is_frozen(self):
        tok = Token(TokenKind.INT, "1", 1, 1, 1)
        with pytest.raises(AttributeError):
            tok.text = "2"  # type: ignore[misc]
