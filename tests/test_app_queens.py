"""The N-queens case study (section 3)."""

import pytest

from repro.apps.queens import (
    PAPER_EIGHT_QUEENS,
    SOLUTION_COUNTS,
    compile_queens,
    make_registry,
    queens_source,
    solve,
    solve_sequential,
)
from repro.compiler import compile_source
from repro.machine import SimulatedExecutor, cray_2, uniform
from repro.runtime import SequentialExecutor


class TestSequentialOracle:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_known_solution_counts(self, n):
        assert len(solve_sequential(n)) == SOLUTION_COUNTS[n]

    def test_solutions_are_valid(self):
        for sol in solve_sequential(6):
            assert len(set(sol)) == 6
            diags = [c - i for i, c in enumerate(sol)]
            anti = [c + i for i, c in enumerate(sol)]
            assert len(set(diags)) == 6 and len(set(anti)) == 6


class TestDeliriumQueens:
    @pytest.mark.parametrize("n", [2, 4, 5, 6])
    def test_matches_oracle(self, n):
        assert solve(n) == solve_sequential(n)

    def test_paper_listing_compiles_and_runs(self):
        compiled = compile_source(PAPER_EIGHT_QUEENS, registry=make_registry(8))
        result = compiled.run()
        assert len(result.value) == 92

    def test_generated_source_for_8_matches_paper_result(self):
        assert len(solve(8)) == 92

    def test_deterministic_across_schedules(self):
        compiled = compile_queens(6)
        results = {
            tuple(
                SequentialExecutor(seed=seed)
                .run(compiled.graph, registry=compiled.registry)
                .value
            )
            for seed in (1, 2, 3)
        }
        assert len(results) == 1

    def test_simulated_machine_same_result(self):
        compiled = compile_queens(5)
        sim = SimulatedExecutor(cray_2()).run(
            compiled.graph, registry=compiled.registry
        )
        assert sim.value == solve_sequential(5)

    def test_invalid_board_size(self):
        with pytest.raises(ValueError):
            queens_source(0)


class TestPriorityScheme:
    """Section 7: the priority scheme tames the activation explosion."""

    def test_priorities_reduce_peak_activations(self):
        compiled = compile_queens(6)
        with_p = SequentialExecutor(use_priorities=True).run(
            compiled.graph, registry=compiled.registry
        )
        without = SequentialExecutor(use_priorities=False).run(
            compiled.graph, registry=compiled.registry
        )
        assert with_p.value == without.value
        peak_with = with_p.stats.activation_stats["peak_live"]
        peak_without = without.stats.activation_stats["peak_live"]
        assert peak_with < peak_without / 2

    def test_recursive_calls_marked(self):
        compiled = compile_queens(4)
        from repro.graph.ir import NodeKind

        recursive_calls = [
            node
            for t in compiled.graph.templates.values()
            for node in t.nodes
            if node.kind is NodeKind.CALL and node.recursive
        ]
        assert recursive_calls  # try <-> do_it cycle

    def test_cow_isolates_boards(self):
        compiled = compile_queens(5)
        result = SequentialExecutor(check_purity=True).run(
            compiled.graph, registry=compiled.registry
        )
        assert result.stats.cow_copies > 0
        assert result.value == solve_sequential(5)


class TestParallelScaling:
    def test_queens_speeds_up(self):
        compiled = compile_queens(6)
        t1 = SimulatedExecutor(uniform(1)).run(
            compiled.graph, registry=compiled.registry
        ).ticks
        t8 = SimulatedExecutor(uniform(8)).run(
            compiled.graph, registry=compiled.registry
        ).ticks
        assert t1 / t8 > 3.0  # plenty of parallelism in the search tree
