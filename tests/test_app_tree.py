"""The parallel tree-walk framework (section 6.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.tree import (
    clip,
    imbalance,
    inherited,
    inherited_partitioned,
    pack,
    partition,
    subtree_weight,
    synthesized,
    synthesized_partitioned,
    top_down,
    top_down_partitioned,
)


class TNode:
    """A tiny mutable tree for walk tests."""

    def __init__(self, value=0, kids=()):
        self.value = value
        self.kids = list(kids)

    def children(self):
        return iter(self.kids)


def chain(n: int) -> TNode:
    node = TNode(n)
    for v in range(n - 1, 0, -1):
        node = TNode(v, [node])
    return node


def bushy(depth: int, fanout: int = 3, counter=None) -> TNode:
    counter = counter if counter is not None else [0]
    counter[0] += 1
    node = TNode(counter[0])
    if depth > 0:
        node.kids = [bushy(depth - 1, fanout, counter) for _ in range(fanout)]
    return node


def all_values(root: TNode) -> list[int]:
    out = [root.value]
    for c in root.children():
        out.extend(all_values(c))
    return out


class TestWeightsAndClipping:
    def test_subtree_weight(self):
        assert subtree_weight(bushy(2, 2)) == 7

    def test_clip_single_processor_takes_whole_tree(self):
        root = bushy(3)
        clipping = clip(root, 1)
        assert len(clipping.pieces) == 1
        assert clipping.pieces[0][0] is root
        assert clipping.crown == []

    def test_clip_pieces_cover_all_nodes(self):
        root = bushy(4)
        clipping = clip(root, 4)
        covered = sum(w for _, w in clipping.pieces) + len(clipping.crown)
        assert covered == subtree_weight(root)

    def test_clip_respects_one_third_floor(self):
        root = bushy(4)
        total = subtree_weight(root)
        desired = total / 4
        for piece, w in clip(root, 4).pieces:
            # No piece was split further once below the desired weight.
            assert w <= desired or not list(piece.children())

    def test_pack_balances(self):
        pieces = [(TNode(i), w) for i, w in enumerate([9, 7, 5, 4, 3, 2, 1, 1])]
        sets = pack(pieces, 3)
        loads = [sum(w for n in s for p, w in pieces if p is n) for s in sets]
        assert max(loads) - min(loads) <= 4

    def test_imbalance_metric(self):
        root = bushy(4)
        _, sets = partition(root, 3)
        assert 1.0 <= imbalance(sets) < 2.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            clip(bushy(1), 0)
        with pytest.raises(ValueError):
            pack([], 0)


class TestWalks:
    def test_top_down_visits_parents_first(self):
        order = []
        root = bushy(2, 2)
        top_down(root, lambda n: order.append(n.value))
        assert order[0] == root.value
        assert sorted(order) == sorted(all_values(root))

    def test_inherited_accumulates_depth(self):
        depths = {}

        def inherit(node, depth):
            depths[id(node)] = depth
            return depth + 1

        root = bushy(2, 2)
        inherited(root, inherit, 0)
        assert depths[id(root)] == 0
        assert max(depths.values()) == 2

    def test_synthesized_folds_bottom_up(self):
        root = bushy(2, 2)
        total = synthesized(root, lambda n, vs: n.value + sum(vs))
        assert total == sum(all_values(root))


class TestPartitionedWalksMatchSequential:
    @pytest.mark.parametrize("n_procs", [1, 2, 3, 4])
    def test_top_down(self, n_procs):
        a, b = bushy(4), bushy(4)
        top_down(a, lambda n: setattr(n, "value", n.value * 2))
        top_down_partitioned(b, lambda n: setattr(n, "value", n.value * 2), n_procs)
        assert all_values(a) == all_values(b)

    @pytest.mark.parametrize("n_procs", [1, 2, 3, 4])
    def test_inherited(self, n_procs):
        def make_inherit(store):
            def inherit(node, ctx):
                store[node.value] = ctx
                return ctx + node.value
            return inherit

        a, b = bushy(4), bushy(4)
        sa, sb = {}, {}
        inherited(a, make_inherit(sa), 100)
        inherited_partitioned(b, make_inherit(sb), 100, n_procs)
        assert sa == sb

    @pytest.mark.parametrize("n_procs", [1, 2, 3, 4])
    def test_synthesized(self, n_procs):
        fold = lambda n, vs: n.value + sum(vs)  # noqa: E731
        a, b = bushy(4), bushy(4)
        assert synthesized(a, fold) == synthesized_partitioned(b, fold, n_procs)

    def test_chain_tree(self):
        # Degenerate deep chains must still partition correctly.
        fold = lambda n, vs: n.value + sum(vs)  # noqa: E731
        assert synthesized(chain(50), fold) == synthesized_partitioned(
            chain(50), fold, 3
        )


class TestPartitionProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 3), st.integers(1, 6))
    def test_partitioned_synthesized_equals_sequential(
        self, depth, fanout, n_procs
    ):
        fold = lambda n, vs: n.value * 3 + sum(vs)  # noqa: E731
        a = bushy(depth, fanout)
        b = bushy(depth, fanout)
        assert synthesized(a, fold) == synthesized_partitioned(b, fold, n_procs)


class TestDeliriumCoordinatedWalks:
    """The walks driven by the Delirium framework itself (section 6.4's
    'parallel tree-walking primitives')."""

    def test_top_down_through_delirium(self):
        from repro.apps.tree import run_top_down

        a, b = bushy(4), bushy(4)
        top_down(a, lambda n: setattr(n, "value", n.value * 2))
        result_tree = run_top_down(
            b, lambda n: setattr(n, "value", n.value * 2)
        )
        assert all_values(result_tree) == all_values(a)

    def test_inherited_through_delirium(self):
        from repro.apps.tree import run_inherited

        depths_seq: dict[int, int] = {}
        depths_par: dict[int, int] = {}

        def make_inherit(store):
            def inherit(node, depth):
                store[node.value] = depth
                return depth + 1

            return inherit

        a, b = bushy(3), bushy(3)
        inherited(a, make_inherit(depths_seq), 0)
        run_inherited(b, make_inherit(depths_par), 0)
        assert depths_seq == depths_par

    def test_synthesized_through_delirium(self):
        from repro.apps.tree import run_synthesized

        fold = lambda n, vs: n.value + sum(vs)  # noqa: E731
        a, b = bushy(4), bushy(4)
        assert run_synthesized(b, fold) == synthesized(a, fold)

    def test_walks_scale_on_simulated_machine(self):
        from repro.apps.tree import (
            compile_tree_walk,
            make_synthesized_registry,
        )
        from repro.machine import SimulatedExecutor, uniform

        fold = lambda n, vs: n.value + sum(vs)  # noqa: E731
        tree = bushy(6, 3)
        registry = make_synthesized_registry(tree, fold)
        program = compile_tree_walk(registry)
        t1 = SimulatedExecutor(uniform(1)).run(
            program.graph, registry=registry
        ).ticks
        t4 = SimulatedExecutor(uniform(4)).run(
            program.graph, registry=registry
        ).ticks
        assert t1 / t4 > 2.0  # clipping balance bounds this below 4
