"""The CLI compile cache (``repro.tools.cache``).

Content-addressed entries: the key covers source text, preprocessor
defines, pass selection, and the serialization format version, so there
is no invalidation logic to get wrong — any input change is a different
key, and any stale/corrupt entry is just a miss.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

import pytest

from repro import compile_source
from repro.graph.serialize import FORMAT_VERSION
from repro.tools.cache import (
    cache_dir,
    cache_key,
    load_cached,
    store_cached,
)


@pytest.fixture()
def cache_env(monkeypatch, tmp_path):
    monkeypatch.setenv("DELIRIUM_CACHE_DIR", str(tmp_path))
    return tmp_path


SRC = "main(n) add(incr(n), 1)"


class TestKey:
    def test_stable_and_sensitive(self):
        base = cache_key(SRC, {"N": 1}, ("dce",))
        assert base == cache_key(SRC, {"N": 1}, ("dce",))
        assert base != cache_key(SRC + " ", {"N": 1}, ("dce",))
        assert base != cache_key(SRC, {"N": 2}, ("dce",))
        assert base != cache_key(SRC, {"N": 1}, ())

    def test_define_order_irrelevant(self):
        assert cache_key(SRC, {"A": 1, "B": 2}) == cache_key(
            SRC, {"B": 2, "A": 1}
        )

    def test_key_covers_format_version(self):
        # Same inputs under a different FORMAT_VERSION must produce a
        # different key, or old-build artifacts could be misread.
        assert str(FORMAT_VERSION) or True  # format version exists
        payload_key = cache_key(SRC)
        assert len(payload_key) == 64  # sha256 hex


class TestStoreLoad:
    def test_round_trip(self, cache_env):
        compiled = compile_source(SRC)
        key = cache_key(SRC)
        assert load_cached(key) is None
        path = store_cached(key, compiled.graph)
        assert os.path.dirname(path) == str(cache_env)
        graph = load_cached(key)
        assert graph is not None
        from repro.runtime import SequentialExecutor

        assert (
            SequentialExecutor().run(graph, args=(4,)).value
            == compiled.run(args=(4,)).value
        )

    def test_corrupt_entry_is_a_miss(self, cache_env):
        key = cache_key(SRC)
        (cache_env / f"{key}.dlc").write_text("{not json", encoding="utf-8")
        assert load_cached(key) is None

    def test_cache_dir_override(self, cache_env):
        assert cache_dir() == str(cache_env)

    def test_default_cache_dir(self, monkeypatch):
        monkeypatch.delenv("DELIRIUM_CACHE_DIR", raising=False)
        assert cache_dir().endswith(os.path.join(".cache", "delirium"))


class TestCLIIntegration:
    def _cli(self, *args, cache: str, env_extra=None):
        env = {**os.environ, "DELIRIUM_CACHE_DIR": cache}
        env.update(env_extra or {})
        return subprocess.run(
            [sys.executable, "-m", "repro.tools.cli", *args],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )

    def test_second_compile_hits_and_agrees(self, tmp_path):
        src = tmp_path / "prog.dlm"
        src.write_text("main(n) add(incr(n), N)\n", encoding="utf-8")
        cache = str(tmp_path / "cache")

        cold = self._cli("compile", str(src), "-D", "N=1", cache=cache)
        assert cold.returncode == 0, cold.stderr
        assert "Lexing" in cold.stdout  # real compile: per-pass times
        assert "cache hit" not in cold.stdout

        warm = self._cli("compile", str(src), "-D", "N=1", cache=cache)
        assert warm.returncode == 0, warm.stderr
        assert "cache hit" in warm.stdout
        assert "Lexing" not in warm.stdout  # compiler skipped

        # Cached runs return the same value.
        out = [
            self._cli(
                "run", str(src), "--arg", "1", "-D", "N=40", cache=cache
            )
            for _ in range(2)
        ]
        assert [p.stdout.strip() for p in out] == ["42", "42"]

    def test_no_cache_bypasses(self, tmp_path):
        src = tmp_path / "prog.dlm"
        src.write_text("main(n) incr(n)\n", encoding="utf-8")
        cache = tmp_path / "cache"

        proc = self._cli(
            "compile", str(src), "--no-cache", cache=str(cache)
        )
        assert proc.returncode == 0, proc.stderr
        assert "Lexing" in proc.stdout
        assert not cache.exists()  # bypass means no write either

        again = self._cli(
            "compile", str(src), "--no-cache", cache=str(cache)
        )
        assert "cache hit" not in again.stdout


class TestLRUBound:
    """``$DELIRIUM_CACHE_MAX`` bounds the cache with LRU eviction."""

    def _fill(self, n: int):
        compiled = compile_source(SRC)
        keys = [cache_key(SRC, {"N": i}) for i in range(n)]
        for key in keys:
            store_cached(key, compiled.graph)
        return keys

    def test_unbounded_by_default(self, cache_env, monkeypatch):
        monkeypatch.delenv("DELIRIUM_CACHE_MAX", raising=False)
        keys = self._fill(6)
        assert all(load_cached(k) is not None for k in keys)

    def test_store_evicts_stalest(self, cache_env, monkeypatch):
        monkeypatch.delenv("DELIRIUM_CACHE_MAX", raising=False)
        keys = self._fill(5)
        # Age the entries deterministically: keys[0] oldest ... keys[4]
        # newest (filesystem mtime granularity is too coarse to rely on).
        for age, key in enumerate(keys):
            path = cache_env / f"{key}.dlc"
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        monkeypatch.setenv("DELIRIUM_CACHE_MAX", "3")
        extra = cache_key(SRC, {"N": 99})
        store_cached(extra, compile_source(SRC).graph)
        survivors = {p.name for p in cache_env.glob("*.dlc")}
        assert len(survivors) == 3
        assert f"{extra}.dlc" in survivors          # the fresh store
        assert f"{keys[4]}.dlc" in survivors        # most recent old entry
        assert f"{keys[0]}.dlc" not in survivors    # stalest went first
        assert f"{keys[1]}.dlc" not in survivors

    def test_hit_refreshes_recency(self, cache_env, monkeypatch):
        monkeypatch.delenv("DELIRIUM_CACHE_MAX", raising=False)
        keys = self._fill(3)
        for age, key in enumerate(keys):
            path = cache_env / f"{key}.dlc"
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        assert load_cached(keys[0]) is not None  # touch the stalest
        monkeypatch.setenv("DELIRIUM_CACHE_MAX", "2")
        store_cached(cache_key(SRC, {"N": 99}), compile_source(SRC).graph)
        survivors = {p.name for p in cache_env.glob("*.dlc")}
        # keys[0] was just read, so keys[1] (now stalest) was evicted.
        assert f"{keys[0]}.dlc" in survivors
        assert f"{keys[1]}.dlc" not in survivors

    def test_evicted_entry_reads_as_miss(self, cache_env, monkeypatch):
        # The concurrent-reader contract: a reader that raced an evictor
        # sees a plain miss, never an error.
        monkeypatch.setenv("DELIRIUM_CACHE_MAX", "1")
        keys = self._fill(2)
        assert load_cached(keys[0]) is None or load_cached(keys[1]) is None

    def test_bogus_bound_means_unbounded(self, cache_env, monkeypatch):
        monkeypatch.setenv("DELIRIUM_CACHE_MAX", "not-a-number")
        keys = self._fill(4)
        assert all(load_cached(k) is not None for k in keys)
        monkeypatch.setenv("DELIRIUM_CACHE_MAX", "0")
        store_cached(cache_key(SRC, {"N": 99}), compile_source(SRC).graph)
        assert load_cached(keys[0]) is not None
