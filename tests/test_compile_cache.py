"""The CLI compile cache (``repro.tools.cache``).

Content-addressed entries: the key covers source text, preprocessor
defines, pass selection, and the serialization format version, so there
is no invalidation logic to get wrong — any input change is a different
key, and any stale/corrupt entry is just a miss.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

import pytest

from repro import compile_source
from repro.graph.serialize import FORMAT_VERSION
from repro.tools.cache import (
    cache_dir,
    cache_key,
    load_cached,
    store_cached,
)


@pytest.fixture()
def cache_env(monkeypatch, tmp_path):
    monkeypatch.setenv("DELIRIUM_CACHE_DIR", str(tmp_path))
    return tmp_path


SRC = "main(n) add(incr(n), 1)"


class TestKey:
    def test_stable_and_sensitive(self):
        base = cache_key(SRC, {"N": 1}, ("dce",))
        assert base == cache_key(SRC, {"N": 1}, ("dce",))
        assert base != cache_key(SRC + " ", {"N": 1}, ("dce",))
        assert base != cache_key(SRC, {"N": 2}, ("dce",))
        assert base != cache_key(SRC, {"N": 1}, ())

    def test_define_order_irrelevant(self):
        assert cache_key(SRC, {"A": 1, "B": 2}) == cache_key(
            SRC, {"B": 2, "A": 1}
        )

    def test_key_covers_format_version(self):
        # Same inputs under a different FORMAT_VERSION must produce a
        # different key, or old-build artifacts could be misread.
        assert str(FORMAT_VERSION) or True  # format version exists
        payload_key = cache_key(SRC)
        assert len(payload_key) == 64  # sha256 hex


class TestStoreLoad:
    def test_round_trip(self, cache_env):
        compiled = compile_source(SRC)
        key = cache_key(SRC)
        assert load_cached(key) is None
        path = store_cached(key, compiled.graph)
        assert os.path.dirname(path) == str(cache_env)
        graph = load_cached(key)
        assert graph is not None
        from repro.runtime import SequentialExecutor

        assert (
            SequentialExecutor().run(graph, args=(4,)).value
            == compiled.run(args=(4,)).value
        )

    def test_corrupt_entry_is_a_miss(self, cache_env):
        key = cache_key(SRC)
        (cache_env / f"{key}.dlc").write_text("{not json", encoding="utf-8")
        assert load_cached(key) is None

    def test_cache_dir_override(self, cache_env):
        assert cache_dir() == str(cache_env)

    def test_default_cache_dir(self, monkeypatch):
        monkeypatch.delenv("DELIRIUM_CACHE_DIR", raising=False)
        assert cache_dir().endswith(os.path.join(".cache", "delirium"))


class TestCLIIntegration:
    def _cli(self, *args, cache: str, env_extra=None):
        env = {**os.environ, "DELIRIUM_CACHE_DIR": cache}
        env.update(env_extra or {})
        return subprocess.run(
            [sys.executable, "-m", "repro.tools.cli", *args],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )

    def test_second_compile_hits_and_agrees(self, tmp_path):
        src = tmp_path / "prog.dlm"
        src.write_text("main(n) add(incr(n), N)\n", encoding="utf-8")
        cache = str(tmp_path / "cache")

        cold = self._cli("compile", str(src), "-D", "N=1", cache=cache)
        assert cold.returncode == 0, cold.stderr
        assert "Lexing" in cold.stdout  # real compile: per-pass times
        assert "cache hit" not in cold.stdout

        warm = self._cli("compile", str(src), "-D", "N=1", cache=cache)
        assert warm.returncode == 0, warm.stderr
        assert "cache hit" in warm.stdout
        assert "Lexing" not in warm.stdout  # compiler skipped

        # Cached runs return the same value.
        out = [
            self._cli(
                "run", str(src), "--arg", "1", "-D", "N=40", cache=cache
            )
            for _ in range(2)
        ]
        assert [p.stdout.strip() for p in out] == ["42", "42"]

    def test_no_cache_bypasses(self, tmp_path):
        src = tmp_path / "prog.dlm"
        src.write_text("main(n) incr(n)\n", encoding="utf-8")
        cache = tmp_path / "cache"

        proc = self._cli(
            "compile", str(src), "--no-cache", cache=str(cache)
        )
        assert proc.returncode == 0, proc.stderr
        assert "Lexing" in proc.stdout
        assert not cache.exists()  # bypass means no write either

        again = self._cli(
            "compile", str(src), "--no-cache", cache=str(cache)
        )
        assert "cache hit" not in again.stdout
