"""Compiler fuzzing: random programs with loops, closures, conditionals.

A second random-program generator, richer than the one in
``test_properties``: it emits ``iterate`` loops (exercising lowering and
tail-call execution), nested local functions (closure conversion), and
conditional chains — then checks the big equivalences:

* optimized == unoptimized == each-single-pass,
* sequential == seeded == FIFO == simulated,
* serialization round-trip executes identically.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import compile_source
from repro.graph.serialize import dumps, loads
from repro.machine import SimulatedExecutor, uniform
from repro.runtime import SequentialExecutor, default_registry

REGISTRY = default_registry()


@st.composite
def _loop_programs(draw):
    """Programs whose main is a pipeline of loops, closures, and ifs."""
    lines: list[str] = []
    names = ["n"]
    n_stages = draw(st.integers(1, 4))
    for i in range(n_stages):
        kind = draw(st.integers(0, 3))
        name = f"s{i}"
        if kind == 0:
            # A bounded counting loop accumulating over prior values.
            bound = draw(st.integers(1, 6))
            src = draw(st.sampled_from(names))
            lines.append(
                f"{name} = iterate {{ i{i} = 0, incr(i{i})  "
                f"acc{i} = {src}, add(acc{i}, i{i}) }} "
                f"while is_less(i{i}, {bound}), result acc{i}"
            )
        elif kind == 1:
            # A local function used twice (closure conversion).
            k = draw(st.sampled_from(names))
            x = draw(st.sampled_from(names))
            lines.append(f"f{i}(p{i}) add(mul(p{i}, 2), {k})")
            lines.append(f"{name} = add(f{i}({x}), f{i}(incr({x})))")
        elif kind == 2:
            # A conditional over previous stages.
            a = draw(st.sampled_from(names))
            b = draw(st.sampled_from(names))
            pivot = draw(st.integers(-2, 2))
            lines.append(
                f"{name} = if is_less({a}, {pivot}) "
                f"then sub({b}, 1) else add({b}, 1)"
            )
        else:
            # Plain arithmetic.
            a = draw(st.sampled_from(names))
            b = draw(st.sampled_from(names))
            lines.append(f"{name} = add(mul({a}, 3), {b})")
        names.append(name)
    acc = names[-1]
    for other in names[:-1]:
        acc = f"add({acc}, {other})"
    bindings = "\n      ".join(lines)
    return f"main(n)\n  let {bindings}\n  in {acc}"


class TestFuzzCompiler:
    @settings(max_examples=30, deadline=None)
    @given(_loop_programs(), st.integers(-4, 4))
    def test_optimizer_equivalence(self, source, n):
        full = compile_source(source, registry=REGISTRY)
        bare = compile_source(source, registry=REGISTRY, optimize_passes=())
        assert full.run(args=(n,)).value == bare.run(args=(n,)).value

    @settings(max_examples=20, deadline=None)
    @given(_loop_programs(), st.integers(-4, 4))
    def test_executor_equivalence(self, source, n):
        compiled = compile_source(source, registry=REGISTRY)
        reference = SequentialExecutor().run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        for executor in (
            SequentialExecutor(seed=5),
            SequentialExecutor(use_priorities=False),
            SimulatedExecutor(uniform(3)),
        ):
            assert (
                executor.run(compiled.graph, args=(n,), registry=REGISTRY).value
                == reference
            )

    @settings(max_examples=15, deadline=None)
    @given(_loop_programs(), st.integers(-4, 4))
    def test_serialization_equivalence(self, source, n):
        compiled = compile_source(source, registry=REGISTRY)
        restored = loads(dumps(compiled.graph))
        a = SequentialExecutor().run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        b = SequentialExecutor().run(restored, args=(n,), registry=REGISTRY).value
        assert a == b

    @settings(max_examples=15, deadline=None)
    @given(_loop_programs())
    def test_generated_programs_validate_and_unparse(self, source):
        from repro import validate_program
        from repro.lang import parse_program
        from repro.lang.ast import unparse

        compiled = compile_source(source, registry=REGISTRY)
        validate_program(compiled.graph)
        program = parse_program(source)
        assert parse_program(unparse(program)) == program

    @settings(max_examples=10, deadline=None)
    @given(_loop_programs(), st.integers(-4, 4))
    def test_loops_run_in_bounded_activation_space(self, source, n):
        compiled = compile_source(source, registry=REGISTRY)
        result = compiled.run(args=(n,))
        # Straight-line pipelines of tail loops never accumulate
        # activations: peak live stays small and flat.
        assert result.stats.activation_stats["peak_live"] <= 12
