"""The three-level priority ready queue."""

import pytest

from repro.runtime.scheduler import (
    PRIORITY_CALL,
    PRIORITY_NORMAL,
    PRIORITY_RECURSIVE_CALL,
    ReadyQueue,
    Task,
)


def make_task(priority: int, seq: int) -> Task:
    return Task(activation=None, node_id=0, priority=priority, seq=seq)


class TestPriorityOrder:
    def test_normal_before_call_before_recursive(self):
        q = ReadyQueue()
        q.push(make_task(PRIORITY_RECURSIVE_CALL, 1))
        q.push(make_task(PRIORITY_NORMAL, 2))
        q.push(make_task(PRIORITY_CALL, 3))
        order = [q.pop().priority for _ in range(3)]
        assert order == [PRIORITY_NORMAL, PRIORITY_CALL, PRIORITY_RECURSIVE_CALL]

    def test_fifo_within_class(self):
        q = ReadyQueue()
        for seq in (1, 2, 3):
            q.push(make_task(PRIORITY_NORMAL, seq))
        assert [q.pop().seq for _ in range(3)] == [1, 2, 3]

    def test_late_normal_preempts_queued_calls(self):
        q = ReadyQueue()
        q.push(make_task(PRIORITY_CALL, 1))
        q.push(make_task(PRIORITY_NORMAL, 2))
        assert q.pop().seq == 2

    def test_ablation_mode_is_single_fifo(self):
        q = ReadyQueue(use_priorities=False)
        q.push(make_task(PRIORITY_RECURSIVE_CALL, 1))
        q.push(make_task(PRIORITY_NORMAL, 2))
        assert q.pop().seq == 1


class TestQueueMechanics:
    def test_len_and_bool(self):
        q = ReadyQueue()
        assert not q
        q.push(make_task(0, 1))
        assert len(q) == 1 and q

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            ReadyQueue().pop()

    def test_push_all(self):
        q = ReadyQueue()
        q.push_all([make_task(0, i) for i in range(5)])
        assert len(q) == 5

    def test_seeded_pop_is_reproducible(self):
        def drain(seed):
            q = ReadyQueue(seed=seed)
            q.push_all([make_task(0, i) for i in range(20)])
            return [q.pop().seq for _ in range(20)]

        assert drain(7) == drain(7)
        assert drain(7) != drain(8)  # astronomically unlikely to collide

    def test_seeded_pop_respects_priorities(self):
        q = ReadyQueue(seed=3)
        q.push(make_task(PRIORITY_RECURSIVE_CALL, 1))
        q.push(make_task(PRIORITY_NORMAL, 2))
        q.push(make_task(PRIORITY_NORMAL, 3))
        first_two = {q.pop().seq, q.pop().seq}
        assert first_two == {2, 3}

    def test_seeded_queue_preserved_after_pop(self):
        q = ReadyQueue(seed=1)
        q.push_all([make_task(0, i) for i in range(10)])
        seen = [q.pop().seq for _ in range(10)]
        assert sorted(seen) == list(range(10))  # nothing lost or duplicated


class TestMaxReadyWatermark:
    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            ReadyQueue(max_ready=0)
        with pytest.raises(ValueError):
            ReadyQueue(max_ready=-3)

    def test_push_never_refused(self):
        q = ReadyQueue(max_ready=2)
        for i in range(10):
            q.push(make_task(PRIORITY_NORMAL, i))
        assert len(q) == 10  # watermark signals; it does not drop work

    def test_saturated_flag_and_count(self):
        q = ReadyQueue(max_ready=3)
        q.push(make_task(PRIORITY_NORMAL, 1))
        q.push(make_task(PRIORITY_NORMAL, 2))
        assert not q.saturated
        q.push(make_task(PRIORITY_NORMAL, 3))
        assert q.saturated
        q.push(make_task(PRIORITY_NORMAL, 4))
        assert q.saturations == 1  # one upward crossing, not one per push

    def test_rearms_below_watermark(self):
        q = ReadyQueue(max_ready=2)
        q.push_all([make_task(PRIORITY_NORMAL, i) for i in range(3)])
        assert q.saturated
        q.pop()
        assert q.saturated  # still at the watermark (2 >= 2)
        q.pop()
        assert not q.saturated
        q.push(make_task(PRIORITY_NORMAL, 9))
        q.push(make_task(PRIORITY_NORMAL, 10))
        assert q.saturations == 2  # second crossing counts again

    def test_pop_batch_rearms(self):
        q = ReadyQueue(max_ready=2)
        q.push_all([make_task(PRIORITY_NORMAL, i) for i in range(4)])
        assert q.saturated
        batch = q.pop_batch(4, key=lambda task: "same-node")
        assert len(batch) == 4
        assert not q.saturated

    def test_emits_event_once_per_crossing(self):
        from repro.obs import EventBus, QueueSaturated

        bus = EventBus()
        events = []
        bus.subscribe(events.append, events=(QueueSaturated,))
        q = ReadyQueue(bus=bus, max_ready=2)
        q.push_all([make_task(PRIORITY_NORMAL, i) for i in range(5)])
        assert len(events) == 1
        assert events[0].depth >= 2
        assert events[0].max_ready == 2
        while q:
            q.pop()
        q.push_all([make_task(PRIORITY_NORMAL, i) for i in range(3)])
        assert len(events) == 2

    def test_drain_with_watermark_matches_plain(self):
        def run(max_ready):
            q = ReadyQueue(max_ready=max_ready)
            q.push_all([make_task(PRIORITY_NORMAL, i) for i in range(4)])
            fired = []

            def fire(task):
                fired.append(task.seq)
                if task.seq < 8:
                    return [make_task(PRIORITY_NORMAL, task.seq + 10)]
                return []

            q.drain(fire)
            return fired

        assert run(max_ready=2) == run(max_ready=None)

    def test_unwatched_queue_has_no_saturation_state(self):
        q = ReadyQueue()
        q.push_all([make_task(PRIORITY_NORMAL, i) for i in range(100)])
        assert not q.saturated
        assert q.saturations == 0
