"""The three-level priority ready queue."""

import pytest

from repro.runtime.scheduler import (
    PRIORITY_CALL,
    PRIORITY_NORMAL,
    PRIORITY_RECURSIVE_CALL,
    ReadyQueue,
    Task,
)


def make_task(priority: int, seq: int) -> Task:
    return Task(activation=None, node_id=0, priority=priority, seq=seq)


class TestPriorityOrder:
    def test_normal_before_call_before_recursive(self):
        q = ReadyQueue()
        q.push(make_task(PRIORITY_RECURSIVE_CALL, 1))
        q.push(make_task(PRIORITY_NORMAL, 2))
        q.push(make_task(PRIORITY_CALL, 3))
        order = [q.pop().priority for _ in range(3)]
        assert order == [PRIORITY_NORMAL, PRIORITY_CALL, PRIORITY_RECURSIVE_CALL]

    def test_fifo_within_class(self):
        q = ReadyQueue()
        for seq in (1, 2, 3):
            q.push(make_task(PRIORITY_NORMAL, seq))
        assert [q.pop().seq for _ in range(3)] == [1, 2, 3]

    def test_late_normal_preempts_queued_calls(self):
        q = ReadyQueue()
        q.push(make_task(PRIORITY_CALL, 1))
        q.push(make_task(PRIORITY_NORMAL, 2))
        assert q.pop().seq == 2

    def test_ablation_mode_is_single_fifo(self):
        q = ReadyQueue(use_priorities=False)
        q.push(make_task(PRIORITY_RECURSIVE_CALL, 1))
        q.push(make_task(PRIORITY_NORMAL, 2))
        assert q.pop().seq == 1


class TestQueueMechanics:
    def test_len_and_bool(self):
        q = ReadyQueue()
        assert not q
        q.push(make_task(0, 1))
        assert len(q) == 1 and q

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            ReadyQueue().pop()

    def test_push_all(self):
        q = ReadyQueue()
        q.push_all([make_task(0, i) for i in range(5)])
        assert len(q) == 5

    def test_seeded_pop_is_reproducible(self):
        def drain(seed):
            q = ReadyQueue(seed=seed)
            q.push_all([make_task(0, i) for i in range(20)])
            return [q.pop().seq for _ in range(20)]

        assert drain(7) == drain(7)
        assert drain(7) != drain(8)  # astronomically unlikely to collide

    def test_seeded_pop_respects_priorities(self):
        q = ReadyQueue(seed=3)
        q.push(make_task(PRIORITY_RECURSIVE_CALL, 1))
        q.push(make_task(PRIORITY_NORMAL, 2))
        q.push(make_task(PRIORITY_NORMAL, 3))
        first_two = {q.pop().seq, q.pop().seq}
        assert first_two == {2, 3}

    def test_seeded_queue_preserved_after_pop(self):
        q = ReadyQueue(seed=1)
        q.push_all([make_task(0, i) for i in range(10)])
        seen = [q.pop().seq for _ in range(10)]
        assert sorted(seen) == list(range(10))  # nothing lost or duplicated
