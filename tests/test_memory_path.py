"""Runtime memory-path units: the shared-memory arena, the measured
dispatch policy, dispatch calibration, and the engine's aliasing guard.

These are the pieces behind the zero-copy process path: the master's
:class:`~repro.runtime.workers.ShmArena` recycles POSIX segments across
fires, :class:`~repro.runtime.workers.DispatchPolicy` consults measured
per-operator wall costs before paying an IPC round trip, and
``calibrate_dispatch`` produces that table from one traced run.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.apps.retina import RetinaConfig, compile_retina
from repro.machine import calibrate_dispatch
from repro.runtime.engine import _may_alias
from repro.runtime.workers import (
    DispatchPolicy,
    ShmArena,
    decode_value,
    encode_value,
)


class TestShmArena:
    def test_acquire_release_reuses_segment(self):
        arena = ShmArena()
        try:
            first = arena.acquire(5000)
            name = first.name
            arena.release(name)
            second = arena.acquire(6000)  # same 8192-byte size class
            assert second.name == name
            assert arena.stats()["created"] == 1
            assert arena.stats()["reused"] == 1
        finally:
            arena.close()

    def test_size_classes_are_powers_of_two_with_floor(self):
        arena = ShmArena(min_bytes=4096)
        assert arena._size_class(1) == 4096
        assert arena._size_class(4096) == 4096
        assert arena._size_class(4097) == 8192
        assert arena._size_class(100_000) == 131_072

    def test_distinct_classes_do_not_share(self):
        arena = ShmArena()
        try:
            small = arena.acquire(1000)
            arena.release(small.name)
            big = arena.acquire(1_000_000)
            assert big.name != small.name
            assert arena.stats()["created"] == 2
            assert arena.stats()["reused"] == 0
        finally:
            arena.close()

    def test_close_unlinks_everything(self):
        from multiprocessing import shared_memory

        arena = ShmArena()
        lent = arena.acquire(5000)
        freed = arena.acquire(5000)
        arena.release(freed.name)
        names = [lent.name, freed.name]
        arena.close()
        assert arena.stats()["lent"] == 0
        assert arena.stats()["free"] == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_pooled_encode_decode_round_trip(self):
        arena = ShmArena()
        try:
            payload = np.arange(10_000, dtype=np.float64)
            enc = encode_value(payload, shm_threshold=1024, arena=arena)
            assert enc.pooled
            assert enc.shm_name is not None
            decoded = decode_value(enc)
            np.testing.assert_array_equal(decoded, payload)
            assert arena.stats()["lent"] == 1
            arena.release(enc.shm_name)
            # The next large encode must reuse the same segment.
            enc2 = encode_value(payload * 2.0, shm_threshold=1024, arena=arena)
            assert enc2.shm_name == enc.shm_name
            assert arena.stats()["reused"] == 1
            np.testing.assert_array_equal(decode_value(enc2), payload * 2.0)
        finally:
            arena.close()

    def test_small_payloads_skip_the_arena(self):
        arena = ShmArena()
        try:
            enc = encode_value(np.arange(4), shm_threshold=1 << 20, arena=arena)
            assert not enc.pooled
            assert enc.shm_name is None
            assert arena.stats()["created"] == 0
        finally:
            arena.close()


def _spec(name: str, cost):
    return SimpleNamespace(name=name, try_cost_ticks=lambda payloads: cost)


class TestDispatchPolicy:
    def test_measured_table_overrides_cost_hint(self):
        policy = DispatchPolicy(
            measured_seconds={"cheap": 0.0001, "heavy": 0.02},
            min_dispatch_seconds=0.002,
        )
        # cheap's static hint says "dispatch"; the measurement vetoes it.
        assert not policy.should_dispatch(_spec("cheap", 1e9), (1,))
        assert policy.should_dispatch(_spec("heavy", 1.0), (1,))

    def test_unmeasured_falls_back_to_cost_hint(self):
        policy = DispatchPolicy(
            measured_seconds={"other": 1.0}, cost_threshold=2_000_000.0
        )
        assert policy.should_dispatch(_spec("unknown", 3_000_000.0), (1,))
        assert not policy.should_dispatch(_spec("unknown", 1_000.0), (1,))

    def test_pinned_local_beats_measurement(self):
        policy = DispatchPolicy(
            pinned_local=frozenset({"heavy"}),
            measured_seconds={"heavy": 10.0},
        )
        assert not policy.should_dispatch(_spec("heavy", 1e9), (1,))

    def test_zero_threshold_still_dispatches_everything(self):
        policy = DispatchPolicy(cost_threshold=0.0)
        assert policy.should_dispatch(_spec("anything", 0.0), (1,))


class TestCalibrateDispatch:
    @pytest.fixture(scope="class")
    def calibration(self):
        config = RetinaConfig(height=32, width=32, kernel_size=5, num_iter=2)
        prog = compile_retina(2, config, fuse=True, donate=True)
        return calibrate_dispatch(prog.graph, prog.registry)

    def test_partition_covers_all_measured_operators(self, calibration):
        names = set(calibration.seconds_by_operator)
        assert names
        assert set(calibration.dispatch) | set(calibration.keep_local) == names
        assert not set(calibration.dispatch) & set(calibration.keep_local)
        for name in calibration.dispatch:
            assert (
                calibration.seconds_by_operator[name]
                >= calibration.min_dispatch_seconds
            )

    def test_fused_specs_measured_under_spec_names(self, calibration):
        # measure_costs keys records by node *label* ("a+b"); the policy
        # needs spec names ("fused:...") — the mapping must land there.
        assert any(
            name.startswith("fused:")
            for name in calibration.seconds_by_operator
        )

    def test_tiny_retina_keeps_everything_local(self, calibration):
        # 32x32 firings are tens of microseconds — far below one IPC
        # round trip.  This is the PR 4 regression fix in miniature.
        assert calibration.dispatch == []

    def test_bar_at_zero_dispatches_everything(self):
        config = RetinaConfig(height=32, width=32, kernel_size=5, num_iter=1)
        prog = compile_retina(2, config, fuse=True)
        calibration = calibrate_dispatch(
            prog.graph, prog.registry, min_dispatch_seconds=0.0
        )
        assert calibration.keep_local == []
        assert set(calibration.dispatch) == set(
            calibration.seconds_by_operator
        )


class TestMayAlias:
    def test_scalars_never_alias(self):
        a = np.ones(8)
        assert not _may_alias(1, a)
        assert not _may_alias("x", a)
        assert not _may_alias(np.float64(3.0), a)

    def test_same_array_aliases(self):
        a = np.ones(8)
        assert _may_alias(a, a)

    def test_view_aliases_its_base(self):
        a = np.ones(8)
        assert _may_alias(a[2:5], a)

    def test_unrelated_array_does_not_alias(self):
        assert not _may_alias(np.ones(8), np.zeros(8))

    def test_tuple_aliases_through_members(self):
        a = np.ones(8)
        assert _may_alias((1, a[1:]), a)
        assert not _may_alias((1, np.zeros(4)), a)

    def test_opaque_objects_assumed_aliasing(self):
        a = np.ones(8)
        assert _may_alias([a], a)  # list: conservatively aliasing
        assert _may_alias(object(), a)
