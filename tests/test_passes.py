"""Unit tests for the four optimization passes, each in isolation."""

import pytest

from repro.compiler import compile_source, optimize
from repro.compiler.passes.pipeline import PASS_ORDER
from repro.lang import ast, parse_program
from repro.lang.ast import unparse
from repro.runtime import default_registry


def optimized(source: str, passes, registry=None, **kw):
    program = parse_program(source)
    registry = registry or default_registry()
    report = optimize(program, registry, enabled=tuple(passes), **kw)
    return program, report


class TestConstProp:
    def test_literal_binding_propagates(self):
        p, report = optimized(
            "main() let x = 3 in add(x, x)", ["constprop"]
        )
        body = p.function("main").body
        # uses replaced, then the all-literal application folds to 6;
        # the dead binding survives until DCE
        assert body.body == ast.Literal(value=6)
        assert report.stats["constprop.propagated"] == 2
        assert report.stats["constprop.folded"] == 1

    def test_copy_propagation(self):
        p, _ = optimized(
            "main(n) let x = n in incr(x)", ["constprop"]
        )
        assert "incr(n)" in unparse(p)

    def test_folding_pure_operator(self):
        p, report = optimized("main() add(2, 3)", ["constprop"])
        assert p.function("main").body == ast.Literal(value=5)
        assert report.stats["constprop.folded"] == 1

    def test_folding_cascades(self):
        p, _ = optimized("main() mul(add(1, 2), incr(3))", ["constprop"])
        assert p.function("main").body == ast.Literal(value=12)

    def test_branch_folding_true(self):
        p, _ = optimized("main(x) if 1 then incr(x) else decr(x)", ["constprop"])
        assert unparse(p.function("main").body).strip() == "incr(x)"

    def test_branch_folding_null_is_false(self):
        p, _ = optimized("main(x) if NULL then incr(x) else decr(x)", ["constprop"])
        assert unparse(p.function("main").body).strip() == "decr(x)"

    def test_division_by_zero_not_folded(self):
        p, _ = optimized("main() div(1, 0)", ["constprop"])
        assert isinstance(p.function("main").body, ast.Apply)

    def test_impure_operator_not_folded(self):
        reg = default_registry()

        @reg.register(name="roll_dice", pure=False)
        def roll_dice(n):
            return 4

        p, _ = optimized("main() roll_dice(6)", ["constprop"], registry=reg)
        assert isinstance(p.function("main").body, ast.Apply)

    def test_shadowed_operator_name_not_folded(self):
        # `add` bound as a local value must not be treated as the builtin.
        p, _ = optimized(
            "main(add) add(2, 3)", ["constprop"]
        )
        assert isinstance(p.function("main").body, ast.Apply)


class TestCSE:
    def test_duplicate_pure_binding_eliminated(self):
        p, report = optimized(
            "main(n) let a = incr(n) b = incr(n) in add(a, b)", ["cse"]
        )
        b = p.function("main").body.bindings[1]
        assert b.expr == ast.Var(name="a")
        assert report.stats["cse.eliminated"] == 1

    def test_impure_not_eliminated(self):
        reg = default_registry()

        @reg.register(name="gen")
        def gen(n):
            return n

        p, report = optimized(
            "main(n) let a = gen(n) b = gen(n) in add(a, b)",
            ["cse"],
            registry=reg,
        )
        assert "cse.eliminated" not in report.stats

    def test_availability_does_not_cross_if_arms(self):
        p, report = optimized(
            """
            main(n, c)
              if c
              then let a = incr(n) in a
              else let b = incr(n) in b
            """,
            ["cse"],
        )
        assert "cse.eliminated" not in report.stats

    def test_outer_binding_available_in_arm(self):
        p, report = optimized(
            """
            main(n, c)
              let a = incr(n)
              in if c then let b = incr(n) in b else a
            """,
            ["cse"],
        )
        assert report.stats["cse.eliminated"] == 1

    def test_nested_discovery_does_not_escape(self):
        p, report = optimized(
            """
            main(n)
              let h(x) let inner = incr(n) in add(inner, x)
                  outer = incr(n)
              in add(h(1), outer)
            """,
            ["cse"],
        )
        # `inner` was discovered inside h; `outer` must not reuse it.
        outer_binding = p.function("main").body.bindings[1]
        assert isinstance(outer_binding.expr, ast.Apply)


class TestDCE:
    def test_unused_pure_binding_removed(self):
        p, report = optimized(
            "main(n) let unused = incr(n) in n", ["dce"]
        )
        assert unparse(p.function("main").body).strip() == "n"
        assert report.stats["dce.removed"] == 1

    def test_used_binding_kept(self):
        p, report = optimized("main(n) let x = incr(n) in x", ["dce"])
        assert "dce.removed" not in report.stats

    def test_impure_binding_kept(self):
        reg = default_registry()

        @reg.register(name="log_it")
        def log_it(n):
            return n

        p, report = optimized(
            "main(n) let unused = log_it(n) in n", ["dce"], registry=reg
        )
        assert "dce.removed" not in report.stats

    def test_cascading_removal(self):
        p, _ = optimized(
            "main(n) let a = incr(n) b = incr(a) c = incr(b) in n",
            ["dce"],
        )
        assert unparse(p.function("main").body).strip() == "n"

    def test_unused_tuple_binding_removed(self):
        p, _ = optimized(
            "main(n) let <a, b> = <incr(n), decr(n)> in n", ["dce"]
        )
        assert unparse(p.function("main").body).strip() == "n"

    def test_partially_used_tuple_binding_kept(self):
        p, _ = optimized(
            "main(n) let <a, b> = <incr(n), decr(n)> in a", ["dce"]
        )
        assert isinstance(p.function("main").body, ast.Let)

    def test_unused_local_function_removed(self):
        p, _ = optimized(
            "main(n) let h(x) incr(x) in n", ["dce"]
        )
        assert unparse(p.function("main").body).strip() == "n"

    def test_self_recursive_unused_function_removed(self):
        p, _ = optimized(
            "main(n) let h(x) h(incr(x)) in n", ["dce"]
        )
        assert unparse(p.function("main").body).strip() == "n"


class TestInline:
    def test_small_function_inlined(self):
        p, report = optimized(
            "main(n) double(n)\ndouble(x) add(x, x)", ["inline"]
        )
        body = p.function("main").body
        assert isinstance(body, ast.Let)  # parameter binding + body
        assert report.stats["inline.expanded"] == 1

    def test_inline_plus_cleanup_folds_everything(self):
        p, _ = optimized(
            "main() double(3)\ndouble(x) add(x, x)", PASS_ORDER
        )
        assert p.function("main").body == ast.Literal(value=6)

    def test_recursive_function_not_inlined(self):
        p, report = optimized(
            "main(n) f(n)\nf(x) if x then f(decr(x)) else 0", ["inline"]
        )
        assert "inline.expanded" not in report.stats

    def test_large_function_not_inlined(self):
        big_body = "add(x, add(x, add(x, add(x, x))))"
        p, report = optimized(
            f"main(n) f(n)\nf(x) {big_body}",
            ["inline"],
            inline_threshold=3,
        )
        assert "inline.expanded" not in report.stats

    def test_local_function_inlined(self):
        p, report = optimized(
            "main(n) let sq(x) mul(x, x) in sq(n)", PASS_ORDER
        )
        assert report.stats.get("inline.expanded", 0) == 1
        assert "mul(n, n)" in unparse(p)

    def test_alpha_renaming_prevents_capture(self):
        # f's internal `t` must not collide with main's `t`.
        p, _ = optimized(
            """
            main(n) let t = incr(n) in add(t, f(n))
            f(x) let t = decr(x) in mul(t, t)
            """,
            ["inline"],
        )
        compiled_names = [
            node.name
            for node in p.function("main").walk()
            if isinstance(node, ast.SimpleBinding)
        ]
        assert len(compiled_names) == len(set(compiled_names))

    def test_shadowed_global_blocks_inlining(self):
        # main binds `incr`; f's body needs the *operator* incr.
        p, report = optimized(
            """
            main(n) let incr = 5 in add(incr, f(n))
            f(x) incr(x)
            """,
            ["inline"],
        )
        assert "inline.expanded" not in report.stats


class TestSemanticsPreservation:
    @pytest.mark.parametrize(
        "source,args,expected",
        [
            ("main() add(2, 3)", (), 5),
            ("main(n) let a = incr(n) b = incr(n) in mul(a, b)", (4,), 25),
            ("main(n) double(incr(n))\ndouble(x) add(x, x)", (2,), 6),
            (
                "main(n) iterate { i = 0, incr(i)  s = 0, add(s, i) }"
                " while is_less(i, n), result s",
                (5,),
                10,
            ),
            ("main(c) if c then add(1, 2) else mul(2, 3)", (0,), 6),
        ],
    )
    def test_optimized_equals_unoptimized(self, source, args, expected):
        for passes in (None, ()):
            pass  # clarity: the two compilations below
        full = compile_source(source)
        bare = compile_source(source, optimize_passes=())
        assert full.run(args=args).value == expected
        assert bare.run(args=args).value == expected

    def test_optimization_reduces_graph_size(self):
        source = """
        main(n)
          let a = add(2, 3)
              b = add(2, 3)
              unused = mul(a, b)
              r = double(n)
          in add(r, a)
        double(x) add(x, x)
        """
        full = compile_source(source)
        bare = compile_source(source, optimize_passes=())
        assert full.graph.total_nodes() < bare.graph.total_nodes()
        assert full.run(args=(10,)).value == bare.run(args=(10,)).value == 25

    def test_report_rounds_bounded(self):
        program = parse_program("main() add(1, 2)")
        report = optimize(program, default_registry())
        assert report.rounds <= 8

    def test_unknown_pass_name_rejected(self):
        program = parse_program("main() 1")
        with pytest.raises(KeyError):
            optimize(program, default_registry(), enabled=("magic",))
