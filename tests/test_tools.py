"""Timing reports and the load-balance summary."""

from repro.runtime.tracing import Tracer
from repro.tools import (
    load_balance_summary,
    node_timing_report,
    pass_table,
)


def make_tracer() -> Tracer:
    t = Tracer()
    t.record("convol_split", "op", 10_013)
    t.record("convol_bite", "op", 1_059_919)
    t.record("convol_bite", "op", 1_135_594)
    t.record("convol_bite", "op", 1_060_799)
    t.record("convol_bite", "op", 1_062_540)
    t.record("incr", "op", 3_073)
    t.record("post_up", "op", 45_672)
    t.record("post_up", "op", 4_070_365)
    t.record("call:do_convol", "call", 200)
    return t


class TestNodeTimingReport:
    def test_paper_format(self):
        report = node_timing_report(make_tracer())
        lines = report.splitlines()
        assert lines[0] == "call of convol_split took 10013"
        assert "call of convol_bite took 1059919" in lines

    def test_ops_only_filters_engine_nodes(self):
        report = node_timing_report(make_tracer())
        assert "do_convol" not in report

    def test_include_filter(self):
        report = node_timing_report(make_tracer(), include={"post_up"})
        assert report.count("call of") == 2

    def test_all_records_mode(self):
        report = node_timing_report(make_tracer(), ops_only=False)
        assert "call:do_convol" in report


class TestTracerAggregation:
    def test_totals_by_label(self):
        totals = make_tracer().totals_by_label()
        assert totals["post_up"] == 45_672 + 4_070_365

    def test_count_by_label(self):
        assert make_tracer().count_by_label()["convol_bite"] == 4

    def test_max_by_label(self):
        assert make_tracer().max_by_label()["post_up"] == 4_070_365

    def test_total_ticks(self):
        assert make_tracer().total_ticks() > 7_000_000


class TestLoadBalanceSummary:
    def test_finds_the_paper_bottleneck(self):
        summary = load_balance_summary(
            make_tracer(), include={"convol_bite", "post_up"}
        )
        assert summary.bottleneck == "post_up"
        assert summary.bottleneck_max == 4_070_365
        # The paper's diagnosis: one call as long as all convolutions
        # combined => imbalance far above 1.
        assert summary.imbalance_ratio > 3.0

    def test_describe_renders_table(self):
        text = load_balance_summary(make_tracer()).describe()
        assert "bottleneck" in text
        assert "convol_bite" in text

    def test_empty_trace(self):
        summary = load_balance_summary(Tracer())
        assert summary.bottleneck == ""


class TestPassTable:
    def test_renders_totals_and_speedup(self):
        text = pass_table(
            {"Lexing": 91, "Parsing": 200},
            {"Lexing": 91, "Parsing": 78},
            n_processors=3,
            unit="msec",
        )
        assert "Time Per Compiler Pass (in msec)" in text
        assert "Totals" in text
        assert "291" in text and "169" in text
        assert "1.72" in text  # 291/169
