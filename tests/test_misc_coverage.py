"""Corner coverage: values, truthiness, driver, preprocessor quirks."""

import numpy as np
import pytest

from repro import compile_source
from repro.compiler import compile_file
from repro.errors import SingleAssignmentError
from repro.runtime import (
    NULL,
    MultiValue,
    OperatorValue,
    SequentialExecutor,
    default_registry,
    is_truthy,
)
from repro.runtime.blocks import DataBlock


class TestValues:
    def test_null_singleton(self):
        from repro.runtime.values import _Null

        assert _Null() is NULL
        assert not NULL
        assert repr(NULL) == "NULL"

    def test_null_survives_pickling(self):
        import pickle

        assert pickle.loads(pickle.dumps(NULL)) is NULL

    def test_multivalue_repr_and_len(self):
        mv = MultiValue((1, "a"))
        assert len(mv) == 2
        assert repr(mv) == "<1, 'a'>"

    def test_operator_value_repr(self):
        assert repr(OperatorValue("incr")) == "operator:incr"


class TestTruthiness:
    def test_null_is_false(self):
        assert not is_truthy(NULL)

    def test_numbers(self):
        assert is_truthy(1) and is_truthy(-2) and not is_truthy(0)

    def test_block_judged_by_payload(self):
        assert is_truthy(DataBlock([1]))
        assert not is_truthy(DataBlock([]))

    def test_multielement_array_condition_raises(self):
        reg = default_registry()
        reg.register(name="arr")(lambda: np.array([1, 2]))
        compiled = compile_source(
            "main() if arr() then 1 else 2", registry=reg
        )
        with pytest.raises(Exception):
            SequentialExecutor().run(compiled.graph, registry=reg)

    def test_block_condition_in_program(self):
        reg = default_registry()
        reg.register(name="full")(lambda: [1])
        reg.register(name="empty")(lambda: [])
        compiled = compile_source(
            "main() <if full() then 1 else 2, if empty() then 1 else 2>",
            registry=reg,
        )
        assert SequentialExecutor().run(compiled.graph, registry=reg).value == (1, 2)


class TestFirstClassModifyingOperator:
    def test_modifies_respected_through_operator_value(self):
        reg = default_registry()
        reg.register(name="mk")(lambda: [0])
        reg.register(name="set9", modifies=(0,))(
            lambda l: (l.__setitem__(0, 9), l)[1]
        )
        reg.register(name="head", pure=True)(lambda l: l[0])
        compiled = compile_source(
            """
            main()
              let apply_fn(f, x) f(x)
                  b = mk()
                  w = apply_fn(set9, b)
              in <head(w), head(b)>
            """,
            registry=reg,
        )
        # set9 invoked through a first-class operator value must still
        # copy-on-write: b keeps 0.
        value = SequentialExecutor().run(compiled.graph, registry=reg).value
        assert value == (9, 0)


class TestDriverMisc:
    def test_compile_file(self, tmp_path):
        path = tmp_path / "p.dlm"
        path.write_text("main(n) add(n, K)\n")
        compiled = compile_file(str(path), defines={"K": 5})
        assert compiled.run(args=(2,)).value == 7

    def test_trivial_program_on_every_machine(self):
        from repro.machine import PRESETS, SimulatedExecutor

        compiled = compile_source("main() 1")
        for factory in PRESETS.values():
            assert (
                SimulatedExecutor(factory()).run(compiled.graph).value == 1
            )

    def test_duplicate_loopvar_rejected(self):
        with pytest.raises(SingleAssignmentError):
            compile_source(
                "main() iterate { i = 0, incr(i)  i = 1, incr(i) } "
                "while is_less(i, 3), result i"
            )


class TestPreprocessorQuirks:
    def test_define_without_value_is_just_a_comment(self):
        # '#' begins a comment, so a malformed directive is inert rather
        # than an error; documented behaviour.
        compiled = compile_source("#define X\nmain() 1")
        assert compiled.run().value == 1

    def test_defines_inside_strings_are_substituted(self):
        # Substitution is textual (like the original's preprocessor), so
        # words inside string literals are fair game — documented.
        from repro.lang import preprocess

        assert preprocess('f("N")', {"N": 3}) == 'f("3")'


class TestMemoryInventoryDescribe:
    def test_describe_mentions_replication(self):
        from repro.machine.memory import MemoryInventory

        inv = MemoryInventory(
            template_total=1000, peak_activation_total=100,
            processors=4, replicated=True,
        )
        assert "replicated x4" in inv.describe()
        assert inv.template_fraction == pytest.approx(4000 / 4100)

    def test_unreplicated_fraction(self):
        from repro.machine.memory import MemoryInventory

        inv = MemoryInventory(
            template_total=1000, peak_activation_total=1000,
            processors=4, replicated=False,
        )
        assert inv.template_fraction == pytest.approx(0.5)

    def test_empty_inventory(self):
        from repro.machine.memory import MemoryInventory

        assert MemoryInventory().template_fraction == 0.0


class TestTrafficDescribe:
    def test_describe(self):
        from repro.machine.memory import TrafficAccount

        t = TrafficAccount()
        t.charge_data(100, remote=True, processor=2)
        t.charge_data(50, remote=False, processor=1)
        t.charge_template(25)
        assert t.interconnect_bytes == 125
        assert "remote: 100" in t.describe()
        assert t.per_processor_remote == {2: 100}


class TestWorkstationPreset:
    def test_single_processor(self):
        from repro.machine import SimulatedExecutor, workstation

        from repro import compile_source

        machine = workstation()
        assert machine.processors == 1
        compiled = compile_source("main() add(1, 2)")
        assert SimulatedExecutor(machine).run(compiled.graph).value == 3

    def test_in_presets(self):
        from repro.machine import PRESETS

        assert "workstation" in PRESETS


class TestOptimizationReportDescribe:
    def test_describe_mentions_counts(self):
        from repro import compile_source

        compiled = compile_source(
            "main(n) let a = incr(n) b = incr(n) unused = add(1, 1) in add(a, b)"
        )
        assert compiled.optimization is not None
        text = compiled.optimization.describe()
        assert "eliminated" in text or "removed" in text

    def test_describe_when_idle(self):
        from repro import compile_source

        compiled = compile_source("main(n) n")
        text = compiled.optimization.describe()
        assert "nothing to do" in text
