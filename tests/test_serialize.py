"""Serialization round trips for compiled coordination graphs."""

import pytest

from repro import compile_source, validate_program
from repro.errors import GraphError
from repro.graph.serialize import (
    FORMAT_VERSION,
    dumps,
    load,
    loads,
    program_from_dict,
    program_to_dict,
    save,
)
from repro.runtime import SequentialExecutor

from tests.conftest import FACTORIAL_SRC, FIB_SRC, FORK_JOIN_SRC, fork_join_registry

ROUND_TRIP_SOURCES = [
    "main() 1",
    "main() NULL",
    "main(n) add(incr(n), 2)",
    "main(n) if n then <1, 2> else NULL",
    FACTORIAL_SRC,
    FIB_SRC,
    "main(n) let h(x) add(x, n) in h(h(1))",
]


class TestRoundTrips:
    @pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
    def test_json_round_trip_structure(self, source):
        original = compile_source(source).graph
        restored = loads(dumps(original))
        validate_program(restored)
        assert restored.entry == original.entry
        assert set(restored.templates) == set(original.templates)
        for name, template in original.templates.items():
            other = restored.templates[name]
            assert other.params == template.params
            assert other.captures == template.captures
            assert other.result == template.result
            assert len(other.nodes) == len(template.nodes)

    @pytest.mark.parametrize(
        "source,args,expected",
        [
            (FACTORIAL_SRC, (6,), 720),
            (FIB_SRC, (10,), 55),
            ("main(n) if n then <1, 2> else NULL", (1,), (1, 2)),
        ],
    )
    def test_restored_program_executes_identically(self, source, args, expected):
        original = compile_source(source)
        restored = loads(dumps(original.graph))
        value = SequentialExecutor().run(restored, args=args).value
        assert value == expected

    def test_fork_join_with_custom_registry(self):
        reg = fork_join_registry()
        original = compile_source(FORK_JOIN_SRC, registry=reg)
        restored = loads(dumps(original.graph))
        # The registry is runtime linkage, exactly like the paper's
        # compiled C operators: supply it at execution time.
        value = SequentialExecutor().run(restored, registry=reg).value
        assert value == 100

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "program.dlc")
        original = compile_source(FIB_SRC)
        save(original.graph, path)
        restored = load(path)
        assert SequentialExecutor().run(restored, args=(9,)).value == 34

    def test_pretty_printed_json(self):
        text = dumps(compile_source("main() 1").graph, indent=2)
        assert "\n" in text
        loads(text)


class TestErrors:
    def test_version_mismatch(self):
        data = program_to_dict(compile_source("main() 1").graph)
        data["format"] = 999
        with pytest.raises(GraphError, match="format"):
            program_from_dict(data)

    def test_unknown_marker(self):
        data = program_to_dict(compile_source("main() NULL").graph)
        for t in data["templates"].values():
            for node in t["nodes"]:
                if isinstance(node.get("value"), dict):
                    node["value"] = {"$delirium": "mystery"}
        with pytest.raises(GraphError):
            program_from_dict(data)

    def test_current_format_version(self):
        data = program_to_dict(compile_source("main() 1").graph)
        assert data["format"] == FORMAT_VERSION


class TestAppsSerialize:
    def test_queens_round_trips(self):
        from repro.apps.queens import compile_queens, solve_sequential

        compiled = compile_queens(5)
        restored = loads(dumps(compiled.graph))
        value = SequentialExecutor().run(
            restored, registry=compiled.registry
        ).value
        assert value == solve_sequential(5)

    def test_retina_round_trips(self):
        from repro.apps.retina import RetinaConfig, compile_retina, run_sequential

        cfg = RetinaConfig(height=32, width=32, num_iter=1)
        compiled = compile_retina(2, cfg)
        restored = loads(dumps(compiled.graph))
        value = SequentialExecutor().run(
            restored, registry=compiled.registry
        ).value
        assert value.signature() == run_sequential(cfg).signature()
