"""Iterate lowering: structure and semantics of the tail-recursive form."""

from repro.compiler import compile_source, lower_program
from repro.lang import ast, parse_program


class TestLoweringStructure:
    def test_iterate_becomes_local_function(self):
        program = lower_program(
            parse_program(
                "main(n) iterate { i = 0, incr(i) } while is_less(i, n), result i"
            )
        )
        body = program.function("main").body
        assert isinstance(body, ast.Let)
        assert isinstance(body.bindings[0], ast.FunBinding)
        loop = body.bindings[0].func
        assert loop.params == ["i"]
        assert isinstance(loop.body, ast.If)
        # then-arm is the recursive call with the update expressions
        assert isinstance(loop.body.then, ast.Apply)
        assert loop.body.then.callee.name == loop.name
        # the let body is the initial call with the init expressions
        assert isinstance(body.body, ast.Apply)
        assert body.body.args[0].value == 0

    def test_multiple_loopvars_become_params_in_order(self):
        program = lower_program(
            parse_program(
                """
                main(n)
                  iterate { i = 1, incr(i)  acc = 1, mul(acc, i) }
                  while is_less_equal(i, n), result acc
                """
            )
        )
        loop = program.function("main").body.bindings[0].func
        assert loop.params == ["i", "acc"]

    def test_nested_iterates_get_distinct_names(self):
        program = lower_program(
            parse_program(
                """
                main(n)
                  iterate {
                    i = 0, incr(i)
                    s = 0, add(s, iterate { j = 0, incr(j) }
                               while is_less(j, i), result j)
                  }
                  while is_less(i, n), result s
                """
            )
        )
        names = {
            node.func.name
            for node in program.walk()
            if isinstance(node, ast.FunBinding)
        }
        assert len(names) == 2

    def test_idempotent_on_iterate_free_programs(self):
        source = "main() add(1, 2)"
        p1 = parse_program(source)
        p2 = lower_program(parse_program(source))
        assert p1 == p2

    def test_fresh_names_avoid_user_names(self):
        program = lower_program(
            parse_program(
                """
                main(loop$1)
                  iterate { i = 0, incr(i) }
                  while is_less(i, loop$1), result i
                """
            )
        )
        loop_names = [
            node.func.name
            for node in program.walk()
            if isinstance(node, ast.FunBinding)
        ]
        assert loop_names and loop_names[0] != "loop$1"


class TestLoweringSemantics:
    def test_while_do_zero_iterations(self):
        # cond false immediately: result uses the init values.
        compiled = compile_source(
            "main() iterate { i = 5, incr(i) } while is_less(i, 0), result i"
        )
        assert compiled.run().value == 5

    def test_counts_updates_correctly(self):
        compiled = compile_source(
            "main(n) iterate { i = 0, incr(i) } while is_less(i, n), result i"
        )
        assert compiled.run(args=(7,)).value == 7

    def test_simultaneous_update_semantics(self):
        # swap-style updates must read the *previous* round's values:
        # (a, b) <- (b, a) forever alternates, never collapses.
        compiled = compile_source(
            """
            main(n)
              iterate {
                k = 0, incr(k)
                a = 1, b
                b = 2, a
              }
              while is_less(k, n),
              result <a, b>
            """
        )
        assert compiled.run(args=(1,)).value == (2, 1)
        assert compiled.run(args=(2,)).value == (1, 2)

    def test_loop_uses_enclosing_parameters(self):
        compiled = compile_source(
            """
            main(n, step)
              iterate { total = 0, add(total, step)
                        k = 0, incr(k) }
              while is_less(k, n),
              result total
            """
        )
        assert compiled.run(args=(4, 10)).value == 40

    def test_constant_activation_space(self):
        # A 500-iteration loop must not accumulate live activations.
        compiled = compile_source(
            "main(n) iterate { i = 0, incr(i) } while is_less(i, n), result i"
        )
        result = compiled.run(args=(500,))
        assert result.value == 500
        assert result.stats.activation_stats["peak_live"] <= 3
        assert result.stats.activation_stats["created"] <= 6
