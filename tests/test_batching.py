"""Batched execution: coalescing, vectorized calls, one-message IPC.

The batched path may only change *how much* work rides each scheduling
and IPC step, never *what* the program computes: single-assignment
semantics make results independent of pop order, so coalescing same-node
ready fires and committing their results in master-assigned sequence must
be bit-identical to firing one at a time.  These tests pin that down for
every executor, plus the moving parts underneath: ``pop_batch``
formation, the ``batch_call`` operator protocol, the plural engine forms,
the grouped wire format's crash salvage, and the observability story
(events, stats, critical-path reconciliation).
"""

import os
import signal

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_source
from repro.compiler.passes import batch as batch_pass
from repro.compiler.passes.pipeline import PASS_ORDER
from repro.errors import DeliriumError, RuntimeFailure
from repro.machine.calibrate import suggest_batch_threshold
from repro.obs import EventBus, EventLog, FireBatchFormed, attach_metrics
from repro.runtime import (
    FaultPolicy,
    ProcessExecutor,
    ReadyQueue,
    SequentialExecutor,
    Task,
    ThreadedExecutor,
    default_registry,
)
from repro.runtime.operators import (
    BATCH_BINDER_NAME,
    OperatorRegistry,
    OperatorSpec,
    batch_call,
)
from repro.runtime.supervise import DEFAULT_BATCH_THRESHOLD

from repro.apps.montecarlo.coordination import compile_pi

GRAPH_PASSES = ("fuse", "donate", "codegen", "batch")


def _compiled_pi(passes=PASS_ORDER + GRAPH_PASSES, batch_size=1500, seed=11):
    return compile_pi(seed=seed, batch_size=batch_size, optimize_passes=passes)


def _pi_reference(compiled, n=16):
    return SequentialExecutor().run(
        compiled.graph, args=(n,), registry=compiled.registry
    )


# ---------------------------------------------------------------------------
# Queue-level batch formation
# ---------------------------------------------------------------------------
class _Act:
    """Stand-in activation: batch_key only needs identity-ish keys."""

    def __init__(self, tag):
        self.template = tag


def _task(tag, node_id, priority=0, seq=0):
    return Task(_Act(tag), node_id, priority, seq)


def _key(task):
    if task.node_id < 0:  # negative node ids model unbatchable nodes
        return None
    return (id(task.activation.template), task.node_id)


class TestPopBatch:
    def test_coalesces_same_key_head_first(self):
        q = ReadyQueue()
        tag = object()
        tasks = [_task(tag, 1, seq=i) for i in range(4)]
        q.push_all(tasks)
        got = q.pop_batch(8, _key)
        assert got == tasks
        assert len(q) == 0

    def test_respects_limit(self):
        q = ReadyQueue()
        tag = object()
        q.push_all([_task(tag, 1, seq=i) for i in range(6)])
        got = q.pop_batch(4, _key)
        assert len(got) == 4
        assert len(q) == 2

    def test_non_matching_tasks_keep_relative_order(self):
        q = ReadyQueue()
        a, b = object(), object()
        mine = [_task(a, 1, seq=i) for i in range(2)]
        other = [_task(b, 2, seq=10 + i) for i in range(3)]
        q.push_all([mine[0], other[0], other[1], mine[1], other[2]])
        got = q.pop_batch(8, _key)
        assert got == mine
        assert [q.pop() for _ in range(3)] == other
        assert len(q) == 0

    def test_none_key_returns_singleton(self):
        q = ReadyQueue()
        tag = object()
        q.push_all([_task(tag, -1), _task(tag, -1)])
        assert len(q.pop_batch(8, _key)) == 1
        assert len(q) == 1

    def test_does_not_cross_priority_classes(self):
        q = ReadyQueue()
        tag = object()
        hi = _task(tag, 1, priority=0)
        lo = _task(tag, 1, priority=2)
        q.push_all([hi, lo])
        got = q.pop_batch(8, _key)
        assert got == [hi]
        assert q.pop() is lo

    def test_limit_one_is_plain_pop(self):
        q = ReadyQueue()
        tag = object()
        q.push_all([_task(tag, 1, seq=i) for i in range(3)])
        assert len(q.pop_batch(1, _key)) == 1
        assert len(q) == 2


# ---------------------------------------------------------------------------
# The operator protocol
# ---------------------------------------------------------------------------
class TestBatchCall:
    def _spec(self, batch_fn=None):
        return OperatorSpec(name="sq", fn=lambda x: x * x, batch_fn=batch_fn)

    def test_fallback_loops_plain_fn(self):
        spec = self._spec()
        assert batch_call(spec, [(2,), (3,), (4,)]) == [4, 9, 16]

    def test_vectorized_form_used_when_present(self):
        calls = []

        def many(args_lists):
            calls.append(len(args_lists))
            return [x * x for (x,) in args_lists]

        spec = self._spec(batch_fn=many)
        assert batch_call(spec, [(2,), (3,)]) == [4, 9]
        assert calls == [2]

    def test_wrong_result_count_raises(self):
        spec = self._spec(batch_fn=lambda args_lists: [1])
        with pytest.raises(RuntimeFailure, match="1 result"):
            batch_call(spec, [(2,), (3,)])

    def test_register_batch_on_mutator_rejected(self):
        reg = OperatorRegistry()
        with pytest.raises(DeliriumError, match="batch form"):

            @reg.register(name="bump", modifies=(0,), batch=lambda c: c)
            def bump(a):
                return a

    def test_register_batch_form_lands_on_spec(self):
        reg = OperatorRegistry()

        @reg.register(name="sq", pure=True, batch=lambda c: [x * x for (x,) in c])
        def sq(x):
            return x * x

        assert reg.get("sq").batch_fn is not None
        assert batch_call(reg.get("sq"), [(5,)]) == [25]


class TestSuggestBatchThreshold:
    def test_no_measurements_gives_default(self):
        assert suggest_batch_threshold(None) == DEFAULT_BATCH_THRESHOLD
        assert suggest_batch_threshold({}) == DEFAULT_BATCH_THRESHOLD

    def test_nothing_dispatched_gives_default(self):
        assert (
            suggest_batch_threshold({"cheap": 1e-6})
            == DEFAULT_BATCH_THRESHOLD
        )

    def test_cheap_operators_batch_wide(self):
        wide = suggest_batch_threshold({"op": 0.002})
        narrow = suggest_batch_threshold({"op": 0.050})
        assert wide > narrow
        assert narrow >= 4  # the floor

    def test_clamped_to_bounds(self):
        assert suggest_batch_threshold({"op": 1.0}) == 4
        assert suggest_batch_threshold({"op": 0.002}, ceiling=8) == 8


# ---------------------------------------------------------------------------
# The compiler pass
# ---------------------------------------------------------------------------
class TestBatchPass:
    def _chain(self, passes):
        reg = default_registry()

        @reg.register(pure=True)
        def add1(x):
            return x + 1

        compiled = compile_source(
            "main(n) add1(add1(add1(n)))",
            registry=reg,
            optimize_passes=passes,
        )
        return compiled, reg

    def test_appends_binder_to_codegen_sources(self):
        compiled, _ = self._chain(PASS_ORDER + GRAPH_PASSES)
        sources = [
            node.codegen
            for t in compiled.graph.templates.values()
            for node in t.nodes
            if node.codegen is not None
        ]
        assert sources
        assert all(BATCH_BINDER_NAME in src for src in sources)

    def test_noop_without_codegen(self):
        compiled, _ = self._chain(PASS_ORDER + ("fuse", "donate", "batch"))
        assert all(
            node.codegen is None
            for t in compiled.graph.templates.values()
            for node in t.nodes
        )

    def test_idempotent(self):
        compiled, reg = self._chain(PASS_ORDER + GRAPH_PASSES)
        before = {
            node.name: node.codegen
            for t in compiled.graph.templates.values()
            for node in t.nodes
            if node.codegen is not None
        }
        assert batch_pass.run(compiled.graph, reg) == {}
        after = {
            node.name: node.codegen
            for t in compiled.graph.templates.values()
            for node in t.nodes
            if node.codegen is not None
        }
        assert before == after

    def test_batched_run_of_lowered_chain_matches(self):
        compiled, reg = self._chain(PASS_ORDER + GRAPH_PASSES)
        plain = SequentialExecutor().run(
            compiled.graph, args=(5,), registry=reg
        )
        batched = SequentialExecutor(batch=True).run(
            compiled.graph, args=(5,), registry=reg
        )
        assert batched.value == plain.value == 8


# ---------------------------------------------------------------------------
# Executor parity (the tentpole's correctness claim)
# ---------------------------------------------------------------------------
class TestBatchedParity:
    def test_sequential(self):
        compiled = _compiled_pi()
        ref = _pi_reference(compiled)
        got = SequentialExecutor(batch=True).run(
            compiled.graph, args=(16,), registry=compiled.registry
        )
        assert got.value == ref.value
        assert got.stats.fire_batches > 0
        assert got.stats.batched_fires > 1

    def test_threaded(self):
        compiled = _compiled_pi()
        ref = _pi_reference(compiled)
        got = ThreadedExecutor(3, batch=True).run(
            compiled.graph, args=(16,), registry=compiled.registry
        )
        assert got.value == ref.value

    def test_process(self):
        compiled = _compiled_pi()
        ref = _pi_reference(compiled)
        got = ProcessExecutor(
            2, batch=True, measured_costs={"pi_batch": 0.004}
        ).run(compiled.graph, args=(16,), registry=compiled.registry)
        assert got.value == ref.value
        assert got.stats.fire_batches > 0

    def test_process_batch_off_also_matches(self):
        compiled = _compiled_pi()
        ref = _pi_reference(compiled)
        got = ProcessExecutor(
            2, batch=False, measured_costs={"pi_batch": 0.004}
        ).run(compiled.graph, args=(16,), registry=compiled.registry)
        assert got.value == ref.value
        assert got.stats.fire_batches == 0

    def test_loop_fallback_operator_matches(self):
        # option_batch registers no batch form: coalesced groups run the
        # fallback loop, still one scheduling step per group.
        from repro.apps.montecarlo.coordination import compile_option

        compiled = compile_option(
            seed=5,
            batch_size=800,
            optimize_passes=PASS_ORDER + GRAPH_PASSES,
        )
        ref = SequentialExecutor().run(
            compiled.graph, args=(12,), registry=compiled.registry
        )
        got = SequentialExecutor(batch=True).run(
            compiled.graph, args=(12,), registry=compiled.registry
        )
        assert got.value == ref.value
        assert got.stats.fire_batches > 0

    def test_batch_threshold_one_degenerates_to_unbatched(self):
        compiled = _compiled_pi()
        ref = _pi_reference(compiled)
        got = SequentialExecutor(batch=True, batch_threshold=1).run(
            compiled.graph, args=(16,), registry=compiled.registry
        )
        assert got.value == ref.value
        assert got.stats.fire_batches == 0


class TestBatchingObservability:
    def test_fire_batch_formed_events_and_metrics(self):
        compiled = _compiled_pi()
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        metrics = attach_metrics(bus)
        got = SequentialExecutor(batch=True, bus=bus).run(
            compiled.graph, args=(16,), registry=compiled.registry
        )
        formed = log.of_type(FireBatchFormed)
        assert formed
        assert sum(e.size for e in formed) == got.stats.batched_fires
        assert all(e.size > 1 for e in formed)
        assert all(not e.remote for e in formed)
        assert (
            metrics.counter("fire_batches").value == got.stats.fire_batches
        )
        assert (
            metrics.counter("batched_fires").value == got.stats.batched_fires
        )

    def test_remote_batches_marked_remote(self):
        compiled = _compiled_pi()
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        ProcessExecutor(
            1, batch=True, bus=bus, measured_costs={"pi_batch": 0.004}
        ).run(compiled.graph, args=(16,), registry=compiled.registry)
        formed = log.of_type(FireBatchFormed)
        assert formed
        assert any(e.remote for e in formed)

    def test_ipc_message_drop(self):
        compiled = _compiled_pi()
        costs = {"pi_batch": 0.004, "mc_combine": 1e-7, "mc_pi": 1e-7}
        batched = ProcessExecutor(
            1, batch=True, measured_costs=costs
        ).run(compiled.graph, args=(16,), registry=compiled.registry)
        plain = ProcessExecutor(
            1, batch=False, measured_costs=costs
        ).run(compiled.graph, args=(16,), registry=compiled.registry)
        assert batched.value == plain.value
        assert batched.stats.dispatched_fires == plain.stats.dispatched_fires
        sent_b = batched.stats.ipc_messages_sent
        sent_p = plain.stats.ipc_messages_sent
        assert sent_b < sent_p
        per_fire_b = (
            sent_b + batched.stats.ipc_messages_received
        ) / batched.stats.dispatched_fires
        per_fire_p = (
            sent_p + plain.stats.ipc_messages_received
        ) / plain.stats.dispatched_fires
        assert per_fire_p / per_fire_b >= 4.0

    def test_critical_path_reconciles_with_batching(self):
        from repro.obs import RunContext

        compiled = _compiled_pi()
        for make in (
            lambda ctx: SequentialExecutor(batch=True, run_ctx=ctx),
            lambda ctx: ProcessExecutor(
                2,
                batch=True,
                run_ctx=ctx,
                measured_costs={"pi_batch": 0.004},
            ),
        ):
            ctx = RunContext(
                "batch-critpath",
                metrics=True,
                flight_recorder=False,
                record_events=True,
            )
            result = make(ctx).run(
                compiled.graph, args=(16,), registry=compiled.registry
            )
            report = ctx.critical_path(result.wall_seconds)
            assert report.reconciliation_error <= 0.05


# ---------------------------------------------------------------------------
# Crash salvage: a grouped message dies mid-batch
# ---------------------------------------------------------------------------
SALVAGE_SRC = "main(n) par_reduce(combine, work, 0, n)"


def _salvage_registry():
    reg = default_registry()
    local = OperatorRegistry()

    def _die(args_lists):  # pragma: no cover - killed before returning
        os.kill(os.getpid(), signal.SIGKILL)

    @local.register(name="work", pure=True, cost=3e6, batch=_die)
    def work(i):
        return (i * i, 1)

    @local.register(name="combine", pure=True, cost=5.0)
    def combine(a, b):
        return (a[0] + b[0], a[1] + b[1])

    return reg.merged_with(local)


class TestMidBatchCrashSalvage:
    def test_group_lost_to_sigkill_salvaged_as_singletons(self):
        reg = _salvage_registry()
        compiled = compile_source(
            SALVAGE_SRC,
            registry=reg,
            prelude=True,
            optimize_passes=PASS_ORDER + GRAPH_PASSES,
        )
        ref = SequentialExecutor().run(
            compiled.graph, args=(8,), registry=reg
        )
        # The batch form SIGKILLs the worker, losing the whole grouped
        # message; every member must come back as a plain singleton retry
        # (which runs the scalar fn) and the result must be unchanged.
        got = ProcessExecutor(
            2,
            batch=True,
            measured_costs={"work": 0.01, "combine": 1e-7},
            fault_policy=FaultPolicy(
                max_retries=3, backoff=0.0, max_respawns=8
            ),
        ).run(compiled.graph, args=(8,), registry=reg)
        assert got.value == ref.value
        assert got.stats.worker_crashes >= 1
        assert got.stats.fires_retried >= 2


# ---------------------------------------------------------------------------
# Optional numba tier
# ---------------------------------------------------------------------------
class TestNumbaTier:
    def test_numpy_fallback_is_silent_and_exact(self):
        from repro.apps.montecarlo import model

        hits, samples = model.pi_batch(3, 0, 10_000)
        assert samples == 10_000
        assert 0 < hits < 10_000

    @pytest.mark.skipif(
        pytest.importorskip("importlib.util").find_spec("numba") is None,
        reason="needs delirium[jit]",
    )
    def test_jit_counter_matches_numpy(self):  # pragma: no cover
        import numpy as np

        from repro.apps.montecarlo import model

        counter = model._numba_count_hits()
        assert counter is not None
        xy = model.batch_rng(9, 4).random((5000, 2))
        x, y = xy[:, 0], xy[:, 1]
        expect = int(np.count_nonzero(x * x + y * y <= 1.0))
        assert int(counter(xy)) == expect


# ---------------------------------------------------------------------------
# The property: batched == unbatched, everywhere
# ---------------------------------------------------------------------------
class TestBatchProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        executor=st.sampled_from(["sequential", "threaded"]),
        workers=st.integers(1, 3),
        fuse=st.booleans(),
        codegen=st.booleans(),
        threshold=st.integers(2, 40),
        n=st.integers(2, 12),
        seed=st.integers(0, 99),
    )
    def test_batched_equals_unbatched(
        self, executor, workers, fuse, codegen, threshold, n, seed
    ):
        passes = PASS_ORDER
        if fuse:
            passes = passes + ("fuse", "donate")
        if codegen:
            passes = passes + ("codegen", "batch")
        compiled = compile_pi(
            seed=seed, batch_size=64, optimize_passes=passes
        )
        if executor == "sequential":
            make = lambda batch: SequentialExecutor(
                batch=batch, batch_threshold=threshold
            )
        else:
            make = lambda batch: ThreadedExecutor(
                workers, batch=batch, batch_threshold=threshold
            )
        plain = make(False).run(
            compiled.graph, args=(n,), registry=compiled.registry
        )
        batched = make(True).run(
            compiled.graph, args=(n,), registry=compiled.registry
        )
        assert batched.value == plain.value

    @settings(max_examples=4, deadline=None)
    @given(
        n=st.integers(4, 12),
        seed=st.integers(0, 9),
        donate=st.booleans(),
    )
    def test_process_batched_equals_unbatched(self, n, seed, donate):
        passes = PASS_ORDER + ("fuse",)
        if donate:
            passes = passes + ("donate",)
        passes = passes + ("codegen", "batch")
        compiled = compile_pi(
            seed=seed, batch_size=64, optimize_passes=passes
        )
        costs = {"pi_batch": 0.004}
        plain = ProcessExecutor(2, batch=False, measured_costs=costs).run(
            compiled.graph, args=(n,), registry=compiled.registry
        )
        batched = ProcessExecutor(2, batch=True, measured_costs=costs).run(
            compiled.graph, args=(n,), registry=compiled.registry
        )
        assert batched.value == plain.value
