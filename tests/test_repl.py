"""The interactive REPL."""

import io
import subprocess
import sys

from repro.tools.repl import Repl


def run_session(*lines: str) -> str:
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    Repl(stdin=stdin, stdout=stdout).run()
    return stdout.getvalue()


class TestRepl:
    def test_evaluates_expression(self):
        out = run_session("add(2, mul(3, 4))", ":quit")
        assert "14" in out

    def test_def_then_use(self):
        out = run_session(
            ":def square(x) mul(x, x)",
            "square(9)",
            ":quit",
        )
        assert "defined: square" in out
        assert "81" in out

    def test_definitions_compose(self):
        out = run_session(
            ":def double(x) add(x, x)",
            ":def quad(x) double(double(x))",
            "quad(3)",
            ":quit",
        )
        assert "12" in out

    def test_list_definitions(self):
        out = run_session(":def f(x) x", ":list", ":quit")
        assert "f(x) x" in out

    def test_list_empty(self):
        out = run_session(":list", ":quit")
        assert "no session definitions" in out

    def test_bad_definition_rejected_and_not_kept(self):
        out = run_session(
            ":def broken(x) unknown_op(x)",
            ":list",
            ":quit",
        )
        assert "error:" in out
        assert "(no session definitions)" in out

    def test_error_reported_session_continues(self):
        out = run_session("mystery(1)", "add(1, 1)", ":quit")
        assert "error:" in out
        assert "2" in out

    def test_graph_command(self):
        out = run_session(":graph add(1, 2)", ":quit")
        assert "=== main" in out

    def test_prelude_available(self):
        out = run_session("par_index_map(incr, 0, 4)", ":quit")
        assert "[1, 2, 3, 4]" in out

    def test_unknown_command(self):
        out = run_session(":frobnicate", ":quit")
        assert "unknown command" in out

    def test_continuation_lines(self):
        out = run_session("add(1, \\", "2)", ":quit")
        assert "3" in out

    def test_eof_terminates(self):
        out = run_session("incr(0)")
        assert "1" in out

    def test_cli_subcommand(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools.cli", "repl"],
            input="add(20, 22)\n:quit\n",
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "42" in proc.stdout
