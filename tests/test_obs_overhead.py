"""Guard: the event bus must cost (almost) nothing when nobody listens.

The observability layer's contract is that a run constructed with no bus —
or with a bus that has zero subscribers — executes the same hot path as an
uninstrumented build.  Structurally, every instrumented component drops an
inactive bus to ``None`` at construction/run time, so the per-task cost is
a single ``is not None`` check.  This file asserts both the structural
property and the measured wall-time consequence on the overhead
benchmark's workload (``bench_overhead.py``: the retina model on a
simulated 4-processor Cray Y-MP).
"""

import gc
import time

from repro.apps.retina import RetinaConfig, compile_retina
from repro.machine import SimulatedExecutor, cray_ymp
from repro.obs import EventBus
from repro.runtime import ExecutionState

# Interleaved min-of-batches comparison: robust to machine noise without
# needing many seconds of samples.  The workload runs in ~15 ms, so
# 2 configs x BATCHES x RUNS ~= 3 s total.
RUNS_PER_BATCH = 6
BATCHES = 7
# ISSUE bound is 5%; timing jitter on shared CI boxes can exceed the real
# (near-zero) overhead, so compare best-of-batches, which squeezes most
# scheduler noise out of both sides before taking the ratio.
MAX_OVERHEAD = 1.05


def _batch_seconds(run, n=RUNS_PER_BATCH):
    t0 = time.perf_counter()
    for _ in range(n):
        run()
    return time.perf_counter() - t0


def test_inactive_bus_is_dropped_at_construction():
    compiled = compile_retina(1, RetinaConfig())
    es = ExecutionState(
        compiled.graph, compiled.registry, bus=EventBus()
    )
    assert es.bus is None  # no subscribers -> no bus on the hot path


def test_zero_subscriber_results_identical():
    compiled = compile_retina(1, RetinaConfig())
    bare = SimulatedExecutor(cray_ymp(4)).run(
        compiled.graph, registry=compiled.registry
    )
    idle = SimulatedExecutor(cray_ymp(4), bus=EventBus()).run(
        compiled.graph, registry=compiled.registry
    )
    assert bare.ticks == idle.ticks
    assert bare.stats.ops_executed == idle.stats.ops_executed
    assert bare.stats.cow_copies == idle.stats.cow_copies


def test_zero_subscriber_overhead_under_five_percent():
    compiled = compile_retina(2, RetinaConfig())

    def run_bare():
        SimulatedExecutor(cray_ymp(4)).run(
            compiled.graph, registry=compiled.registry
        )

    def run_idle_bus():
        SimulatedExecutor(cray_ymp(4), bus=EventBus()).run(
            compiled.graph, registry=compiled.registry
        )

    # Warm-up: imports, code objects, allocator pools.
    run_bare()
    run_idle_bus()

    bare_batches = []
    idle_batches = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(BATCHES):
            bare_batches.append(_batch_seconds(run_bare))
            idle_batches.append(_batch_seconds(run_idle_bus))
    finally:
        if gc_was_enabled:
            gc.enable()

    bare = min(bare_batches)
    idle = min(idle_batches)
    ratio = idle / bare
    assert ratio < MAX_OVERHEAD, (
        f"zero-subscriber event bus cost {(ratio - 1):.1%} wall time "
        f"(bare {bare * 1000:.1f} ms vs idle-bus {idle * 1000:.1f} ms "
        f"per {RUNS_PER_BATCH}-run batch); budget is "
        f"{MAX_OVERHEAD - 1:.0%}"
    )
