"""Shared fixtures and program sources for the test suite."""

from __future__ import annotations

import pytest

from repro import compile_source, default_registry
from repro.runtime import OperatorRegistry


#: The paper's fork-join example (section 2.1), verbatim modulo operators.
FORK_JOIN_SRC = """
main()
  let
     a_start = init_fn()
     a = convolve(a_start, 0)
     b = convolve(a_start, 1)
     c = convolve(a_start, 2)
     d = convolve(a_start, 3)
  in term_fn(a, b, c, d)
"""

#: Tail-recursive iterate: factorial.
FACTORIAL_SRC = """
main(n)
  iterate
  {
    i = 1, incr(i)
    acc = 1, mul(acc, i)
  }
  while is_less_equal(i, n),
  result acc
"""

#: Plain (non-tail) recursion.
FIB_SRC = """
main(n) fib(n)
fib(n)
  if is_less(n, 2)
  then n
  else add(fib(sub(n, 1)), fib(sub(n, 2)))
"""

#: First-class functions: apply a passed function twice.
HIGHER_ORDER_SRC = """
main(n)
  let twice(f, x) f(f(x))
  in twice(incr, n)
"""


def fork_join_registry() -> OperatorRegistry:
    reg = default_registry()

    @reg.register(cost=10.0)
    def init_fn():
        return 10

    @reg.register(pure=True, cost=1000.0)
    def convolve(x, k):
        return x * (k + 1)

    @reg.register(pure=True, cost=10.0)
    def term_fn(a, b, c, d):
        return a + b + c + d

    return reg


@pytest.fixture
def fork_join_program():
    reg = fork_join_registry()
    return compile_source(FORK_JOIN_SRC, registry=reg), reg


@pytest.fixture
def factorial_program():
    return compile_source(FACTORIAL_SRC)


@pytest.fixture
def fib_program():
    return compile_source(FIB_SRC)
