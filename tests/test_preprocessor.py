"""Unit tests for the preprocessor (symbolic constants)."""

import pytest

from repro.errors import PreprocessorError
from repro.lang import extract_defines, parse_program, preprocess


class TestDirectives:
    def test_define_directive(self):
        out = preprocess("#define NUM_ITER 4\nf(NUM_ITER)")
        assert "f(4)" in out

    def test_directive_lines_are_blanked_not_removed(self):
        src = "#define A 1\n#define B 2\nmain() add(A, B)"
        out = preprocess(src)
        assert out.count("\n") == src.count("\n")  # line numbers preserved

    def test_extract_defines(self):
        stripped, defines = extract_defines("#define X 10\nbody X")
        assert defines == {"X": "10"}
        assert "define" not in stripped

    def test_duplicate_identical_define_is_ok(self):
        out = preprocess("#define A 1\n#define A 1\nA")
        assert "1" in out

    def test_conflicting_redefinition_is_error(self):
        with pytest.raises(PreprocessorError):
            preprocess("#define A 1\n#define A 2\nA")


class TestProgrammaticDefines:
    def test_int_value(self):
        assert "f(7)" in preprocess("f(NUM_ITER)", {"NUM_ITER": 7})

    def test_float_value(self):
        assert "f(2.5)" in preprocess("f(RATE)", {"RATE": 2.5})

    def test_string_value_is_raw_syntax(self):
        # A string define is replacement syntax, so it can name an operator.
        out = preprocess("BITE(x)", {"BITE": "convol_bite"})
        assert out == "convol_bite(x)"

    def test_programmatic_overrides_directive(self):
        out = preprocess("#define N 1\nf(N)", {"N": 99})
        assert "f(99)" in out

    def test_invalid_name_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("x", {"not a name": 1})


class TestSubstitutionSemantics:
    def test_word_boundaries_respected(self):
        out = preprocess("NUM_ITERATIONS NUM_ITER", {"NUM_ITER": 4})
        assert out == "NUM_ITERATIONS 4"

    def test_recursive_expansion(self):
        out = preprocess("X", {"X": "Y", "Y": 5})
        assert out == "5"

    def test_cycle_detected(self):
        with pytest.raises(PreprocessorError):
            preprocess("A", {"A": "B", "B": "A"})

    def test_self_cycle_detected(self):
        with pytest.raises(PreprocessorError):
            preprocess("A", {"A": "A"})

    def test_no_defines_is_identity_modulo_directives(self):
        assert preprocess("main() f(1)") == "main() f(1)"


class TestIntegrationWithParser:
    def test_retina_style_constants(self):
        src = """
        main()
          iterate
          {
            t = START, incr(t)
          }
          while is_not_equal(t, STOP),
          result t
        """
        program = parse_program(preprocess(src, {"START": 0, "STOP": 10}))
        loop = program.function("main").body
        assert loop.loopvars[0].init.value == 0
