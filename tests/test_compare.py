"""The Table 2 baseline coordination models: Linda and locks."""

import pytest

from repro.compare import (
    SharedMemory,
    TupleSpace,
    TupleSpaceDeadlock,
    lock_based_sum,
    replicated_worker_sum,
    run_lock_program,
    run_workers,
)


class TestTupleSpace:
    def _space(self, seed=0):
        import random

        return TupleSpace(random.Random(seed))

    def test_out_and_exact_in(self):
        space = self._space()
        space.out("job", 1)
        assert space.try_in("job", 1) == ("job", 1)
        assert space.try_in("job", 1) is None  # removed

    def test_wildcard_matching(self):
        space = self._space()
        space.out("part", 3.5)
        assert space.try_in("part", None) == ("part", 3.5)

    def test_rd_does_not_remove(self):
        space = self._space()
        space.out("x", 1)
        assert space.try_rd("x", None) == ("x", 1)
        assert space.count("x", None) == 1

    def test_length_mismatch_never_matches(self):
        space = self._space()
        space.out("a", 1, 2)
        assert space.try_in("a", None) is None

    def test_random_selection_is_seeded(self):
        def pick(seed):
            space = self._space(seed)
            for i in range(10):
                space.out("t", i)
            return space.try_in("t", None)

        assert pick(1) == pick(1)
        picks = {pick(s) for s in range(10)}
        assert len(picks) > 1  # genuinely associative-random


class TestLindaWorkers:
    def test_simple_producer_consumer(self):
        consumed: list[int] = []

        def make_workers(space):
            def producer():
                for i in range(5):
                    space.out("item", i)
                    yield None

            def consumer():
                for _ in range(5):
                    t = yield ("in", ("item", None))
                    assert t is not None
                    consumed.append(t[1])

            return [producer(), consumer()]

        space = run_workers(make_workers, seed=0)
        assert space.count("item", None) == 0
        assert sorted(consumed) == [0, 1, 2, 3, 4]

    def test_deadlock_detected(self):
        def make_workers(space):
            def blocked():
                yield ("in", ("never", None))

            return [blocked()]

        with pytest.raises(TupleSpaceDeadlock):
            run_workers(make_workers, seed=0)

    def test_replicated_worker_sum_correct(self):
        items = [float(i) for i in range(20)]
        assert replicated_worker_sum(items, seed=0) == pytest.approx(
            sum(items)
        )

    def test_replicated_worker_sum_order_sensitive(self):
        items = [0.1 * (10 ** (i % 6)) for i in range(40)]
        results = {replicated_worker_sum(items, seed=s) for s in range(10)}
        assert len(results) > 1


class TestLockModel:
    def test_shared_memory_cells(self):
        memory = SharedMemory()
        memory.write("k", 41)
        assert memory.read("k") == 41
        assert memory.read("missing", "d") == "d"
        assert memory.accesses == 3

    def test_tasks_all_execute(self):
        counter = {"n": 0}

        def task(memory):
            counter["n"] += 1

        run_lock_program([task] * 10, n_workers=3, seed=1)
        assert counter["n"] == 10

    def test_lock_stats_accumulate(self):
        _, stats = run_lock_program(
            [lambda m: None] * 20, n_workers=4, seed=2
        )
        assert stats.acquisitions == 20
        assert stats.contentions >= 0

    def test_lock_sum_correct_but_order_sensitive(self):
        items = [0.1 * (10 ** (i % 6)) for i in range(40)]
        values = {lock_based_sum(items, seed=s) for s in range(10)}
        assert len(values) > 1
        for v in values:
            assert v == pytest.approx(sum(items), rel=1e-9)

    def test_seeded_reproducibility(self):
        items = [0.1 * i for i in range(30)]
        assert lock_based_sum(items, seed=4) == lock_based_sum(items, seed=4)
