"""Program analyses: SCC recursion detection, purity, free variables."""

from repro.compiler import analyze, analyze_program, free_variables, lower_program
from repro.compiler.analysis import FreshNames, strongly_connected_components
from repro.lang import parse_expression, parse_program


def analysis_for(source: str, pure_ops: set[str] | None = None):
    program = lower_program(parse_program(source))
    env = analyze(program)
    return analyze_program(env, pure_operators=pure_ops)


class TestSCC:
    def test_simple_cycle(self):
        comps = strongly_connected_components(
            {"a": {"b"}, "b": {"a"}, "c": {"a"}}
        )
        comp_sets = [set(c) for c in comps]
        assert {"a", "b"} in comp_sets
        assert {"c"} in comp_sets

    def test_self_loop(self):
        comps = strongly_connected_components({"a": {"a"}})
        assert [set(c) for c in comps] == [{"a"}]

    def test_dag_has_singleton_components(self):
        comps = strongly_connected_components(
            {"a": {"b", "c"}, "b": {"c"}, "c": set()}
        )
        assert all(len(c) == 1 for c in comps)

    def test_long_chain_iterative(self):
        # A 5000-deep chain would blow a recursive Tarjan.
        graph = {f"n{i}": {f"n{i + 1}"} for i in range(5000)}
        graph["n5000"] = set()
        comps = strongly_connected_components(graph)
        assert len(comps) == 5001

    def test_external_successors_ignored(self):
        comps = strongly_connected_components({"a": {"not_a_vertex"}})
        assert [set(c) for c in comps] == [{"a"}]


class TestRecursionDetection:
    def test_self_recursion(self):
        pa = analysis_for("main() f(1)\nf(n) if n then f(n) else n")
        assert pa.is_recursive_function("f")
        assert pa.is_recursive_call("f", "f")
        assert not pa.is_recursive_function("main")
        assert not pa.is_recursive_call("main", "f")

    def test_mutual_recursion(self):
        pa = analysis_for(
            """
            main() even(10)
            even(n) if is_equal(n, 0) then 1 else odd(sub(n, 1))
            odd(n) if is_equal(n, 0) then 0 else even(sub(n, 1))
            """
        )
        assert pa.is_recursive_call("even", "odd")
        assert pa.is_recursive_call("odd", "even")
        assert not pa.is_recursive_call("main", "even")

    def test_lowered_iterate_is_self_recursive(self):
        pa = analysis_for(
            "main(n) iterate { i = 0, incr(i) } while is_less(i, n), result i"
        )
        loops = [q for q in pa.env.functions if "loop$" in q]
        assert len(loops) == 1
        assert pa.is_recursive_function(loops[0])

    def test_queens_try_doit_cycle(self):
        pa = analysis_for(
            """
            main() do_it(empty_board(), 1)
            do_it(b, q) merge(try(b, q, 1), try(b, q, 2))
            try(b, q, l)
              if valid(b) then b else do_it(b, incr(q))
            """
        )
        assert pa.is_recursive_call("do_it", "try")
        assert pa.is_recursive_call("try", "do_it")


class TestPurity:
    def test_pure_chain(self):
        pa = analysis_for(
            "main() f(1)\nf(n) incr(n)", pure_ops={"incr"}
        )
        assert pa.is_pure_function("f")
        assert pa.is_pure_function("main")

    def test_impure_operator_poisons_callers(self):
        pa = analysis_for(
            "main() f(1)\nf(n) launch_missiles(n)", pure_ops={"incr"}
        )
        assert not pa.is_pure_function("f")
        assert not pa.is_pure_function("main")

    def test_dynamic_call_is_impure(self):
        pa = analysis_for("main(fn) fn(1)", pure_ops=set())
        assert not pa.is_pure_function("main")

    def test_none_means_all_operators_pure(self):
        pa = analysis_for("main() anything(1)", pure_ops=None)
        assert pa.is_pure_function("main")


class TestFreeVariables:
    def test_var_is_free(self):
        assert free_variables(parse_expression("x"), set()) == ["x"]

    def test_bound_not_free(self):
        assert free_variables(parse_expression("x"), {"x"}) == []

    def test_first_use_order(self):
        e = parse_expression("add(b, add(a, b))")
        assert free_variables(e, set()) == ["add", "b", "a"]

    def test_let_binds(self):
        e = parse_expression("let x = f(y) in add(x, z)")
        assert free_variables(e, {"f", "add"}) == ["y", "z"]

    def test_local_function_params_bound(self):
        e = parse_expression("let h(p) add(p, q) in h(1)")
        assert free_variables(e, {"add"}) == ["q"]

    def test_iterate_scoping(self):
        e = parse_expression(
            "iterate { i = start, step(i, k) } while c(i), result i"
        )
        assert free_variables(e, {"step", "c"}) == ["start", "k"]


class TestFreshNames:
    def test_avoids_used_names(self):
        fresh = FreshNames({"loop$1"})
        assert fresh.fresh("loop") == "loop$2"

    def test_monotonic(self):
        fresh = FreshNames(set())
        a = fresh.fresh("x")
        b = fresh.fresh("x")
        assert a != b

    def test_generated_names_lex_as_identifiers(self):
        from repro.lang import tokenize, TokenKind

        fresh = FreshNames(set())
        name = fresh.fresh("loop")
        toks = tokenize(name)
        assert toks[0].kind is TokenKind.IDENT
        assert toks[0].text == name
