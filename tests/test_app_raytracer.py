"""The ray-tracer application."""

import numpy as np
import pytest

from repro.apps.raytracer import (
    band_bounds,
    build_scene,
    compile_raytracer,
    render_animation_sequential,
    render_rows,
    render_sequential,
)
from repro.machine import sequent, speedup_curve
from repro.runtime import SequentialExecutor, ThreadedExecutor


class TestRenderer:
    def test_image_shape_and_range(self):
        scene = build_scene(width=32, height=24)
        image = render_sequential(scene)
        assert image.shape == (24, 32, 3)
        assert (image >= 0).all() and (image <= 1.0).all()

    def test_scene_is_seeded(self):
        a = build_scene(seed=3)
        b = build_scene(seed=3)
        assert [s.center for s in a.spheres] == [s.center for s in b.spheres]

    def test_spheres_actually_rendered(self):
        scene = build_scene(width=48, height=32)
        image = render_sequential(scene)
        assert image.max() > scene.background * 2

    def test_band_bounds_partition(self):
        bounds = [band_bounds(37, 4, b) for b in range(4)]
        assert bounds[0][0] == 0 and bounds[-1][1] == 37
        assert all(a[1] == b[0] for a, b in zip(bounds, bounds[1:]))

    def test_bands_equal_full_render(self):
        scene = build_scene(width=40, height=28)
        full = render_sequential(scene)
        parts = [
            render_rows(scene, *band_bounds(28, 4, b)) for b in range(4)
        ]
        assert np.array_equal(np.concatenate(parts, axis=0), full)

    def test_frames_differ(self):
        a = render_sequential(build_scene(width=32, height=24, frame=0))
        b = render_sequential(build_scene(width=32, height=24, frame=1))
        assert not np.array_equal(a, b)  # the light moved


class TestDeliriumRaytracer:
    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_raytracer(width=40, height=24, n_frames=2)

    def test_matches_oracle(self, compiled):
        result = SequentialExecutor().run(
            compiled.graph, registry=compiled.registry
        )
        oracle = render_animation_sequential(width=40, height=24, n_frames=2)
        assert np.array_equal(result.value, oracle)

    def test_threaded_matches(self, compiled):
        seq = SequentialExecutor().run(compiled.graph, registry=compiled.registry)
        par = ThreadedExecutor(4).run(compiled.graph, registry=compiled.registry)
        assert np.array_equal(seq.value, par.value)

    def test_scanline_fork_join_scales(self, compiled):
        curve = speedup_curve(
            compiled.graph, sequent(1), [1, 2, 4], registry=compiled.registry
        )
        assert curve[2] > 1.8
        assert curve[4] > 3.4

    def test_purity_checked_run(self, compiled):
        result = SequentialExecutor(check_purity=True).run(
            compiled.graph, registry=compiled.registry
        )
        assert result.value.shape == (24, 40, 3)
