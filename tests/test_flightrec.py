"""Flight recorder: bounded ring, auto-dump on faults, crash forensics."""

import json
import signal

import numpy as np
import pytest

from repro import compile_source
from repro.faults import parse_fault_spec
from repro.obs import (
    DEFAULT_CAPACITY,
    EventBus,
    FlightRecorder,
    OpStarted,
    RunContext,
    TaskDispatched,
    TaskFired,
    WorkerCrashed,
    encode_event,
)
from repro.runtime import (
    FaultPolicy,
    ProcessExecutor,
    SequentialExecutor,
    default_registry,
)

from tests.conftest import FIB_SRC


def _numpy_registry():
    reg = default_registry()

    @reg.register(pure=True, cost=2e6)
    def mkarr(n, seed):
        rng = np.random.default_rng(seed)
        return rng.standard_normal((n, n))

    @reg.register(pure=True, cost=2e6)
    def total(a):
        return float(a.sum())

    return reg


CRASH_SRC = """
main(n)
  let
    a = mkarr(n, 7)
    b = mkarr(n, 8)
  in add(total(a), total(b))
"""


class TestRing:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=8)
        bus = EventBus()
        rec.attach(bus)
        for i in range(100):
            bus.emit(TaskDispatched(float(i), "op", i, 8, False, 0))
        assert len(rec.ring.events) == 8
        # Oldest dropped: the survivors are the last eight emitted.
        assert [e.call_id for e in rec.ring.events] == list(range(92, 100))

    def test_default_capacity(self):
        assert FlightRecorder().ring.maxlen == DEFAULT_CAPACITY

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_firehose_events_not_recorded(self):
        # The ring must not subscribe to per-fire events — that would
        # defeat the wants() guards at the hot emit sites.
        rec = FlightRecorder()
        bus = EventBus()
        rec.attach(bus)
        assert not bus.wants(TaskFired)
        assert not bus.wants(OpStarted)
        assert bus.wants(TaskDispatched)
        assert bus.wants(WorkerCrashed)

    def test_detach_stops_recording(self):
        rec = FlightRecorder(capacity=8)
        bus = EventBus()
        rec.attach(bus)
        bus.emit(TaskDispatched(0.0, "op", 1, 8, False, 0))
        rec.detach()
        bus.emit(TaskDispatched(1.0, "op", 2, 8, False, 0))
        assert len(rec.ring.events) == 1


class TestDump:
    def test_manual_dump_round_trips(self, tmp_path):
        rec = FlightRecorder(
            run_id="manual", directory=str(tmp_path)
        )
        bus = EventBus()
        rec.attach(bus)
        bus.emit(TaskDispatched(0.5, "convolve", 3, 64, True, 7))
        rec.add_snapshot_source("queue", lambda: {"depths": (1, 2, 3)})
        rec.add_snapshot_source(
            "broken", lambda: (_ for _ in ()).throw(RuntimeError("nope"))
        )
        target = rec.dump(reason="unit test")
        assert target == str(tmp_path / "manual.flightrec.json")
        doc = json.loads(open(target).read())
        assert doc["run_id"] == "manual"
        assert doc["reason"] == "unit test"
        assert doc["capacity"] == DEFAULT_CAPACITY
        assert doc["events"][0]["type"] == "TaskDispatched"
        assert doc["events"][0]["operator"] == "convolve"
        assert doc["snapshot"]["queue"]["depths"] == [1, 2, 3]
        # A raising provider degrades to an error entry, not a lost dump.
        assert "error" in doc["snapshot"]["broken"]
        assert rec.dumps == 1

    def test_encode_event_shape(self):
        doc = encode_event(WorkerCrashed(1.0, 3, 12345, -9, 2))
        assert doc["type"] == "WorkerCrashed"
        assert doc["worker"] == 3 and doc["in_flight"] == 2

    def test_signal_handler_install_uninstall(self, tmp_path):
        rec = FlightRecorder(run_id="sig", directory=str(tmp_path))
        before = signal.getsignal(signal.SIGTERM)
        rec.install_signal_handlers((signal.SIGTERM,))
        assert signal.getsignal(signal.SIGTERM) is not before
        rec.uninstall_signal_handlers()
        assert signal.getsignal(signal.SIGTERM) is before


class TestCrashDump:
    """Acceptance: a chaos run leaves a usable black box behind."""

    def test_worker_kill_dumps_forensics(self, tmp_path):
        reg = _numpy_registry()
        compiled = compile_source(CRASH_SRC, registry=reg)
        ctx = RunContext(
            "chaos", flightrec_dir=str(tmp_path), metrics=False
        )
        executor = ProcessExecutor(
            2,
            cost_threshold=0.0,
            fault_policy=FaultPolicy(
                max_retries=4, backoff=0.0, max_respawns=64
            ),
            fault_spec=parse_fault_spec("kill:op=total,nth=1"),
            run_ctx=ctx,
        )
        result = executor.run(compiled.graph, args=(24,), registry=reg)
        assert result.value is not None  # the run survived the kill

        dump_file = tmp_path / "chaos.flightrec.json"
        assert dump_file.exists()
        doc = json.loads(dump_file.read_text())

        # The crash is in the ring...
        types = [e["type"] for e in doc["events"]]
        assert "WorkerCrashed" in types
        assert "TaskDispatched" in types
        # ...and the trigger names it.
        assert doc["trigger"]["type"] == "WorkerCrashed"
        assert doc["trigger"]["in_flight"] >= 1

        # The snapshot caught the supervisor with the fire in flight:
        # WorkerCrashed is emitted before the lost calls are reassigned.
        sup = doc["snapshot"]["supervisor"]
        assert sup["in_flight"] >= 1
        assert any(
            entry["operator"] == "total" for entry in sup["assigned"]
        )
        # Queue depths and engine state made it in too.
        assert "depths" in doc["snapshot"]["ready_queue"]
        assert doc["snapshot"]["engine"]["finished"] is False
        assert "respawns" in doc["snapshot"]["workers"]
        assert ctx.flightrec.dumps >= 1

    def test_clean_run_leaves_no_dump(self, tmp_path):
        compiled = compile_source(FIB_SRC)
        ctx = RunContext("clean", flightrec_dir=str(tmp_path))
        SequentialExecutor(run_ctx=ctx).run(compiled.graph, args=(8,))
        assert not (tmp_path / "clean.flightrec.json").exists()
        assert ctx.flightrec.dumps == 0
