"""Hypothesis property tests on the model's central guarantees.

Section 8 of the paper: "execution within the model is deterministic ...
the computed result is deterministic regardless of the number of processors
you are using and the order of execution."  We generate random well-formed
Delirium programs (including shared mutable blocks and operators that
destructively modify them) and check:

* every executor — sequential (any scheduling seed, with or without
  priorities), threaded, simulated (any machine, any processor count,
  any affinity policy) — produces the same value;
* compiling with and without the optimizer produces the same value;
* the simulator's makespan satisfies the list-scheduling algebra
  (``max(work/P, critical_path) <= makespan <= work/P + critical_path``)
  on overhead-free machines.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import compile_source
from repro.lang.ast import unparse
from repro.machine import SimulatedExecutor, butterfly, uniform
from repro.runtime import (
    ProcessExecutor,
    SequentialExecutor,
    ThreadedExecutor,
    default_registry,
)


def _registry():
    reg = default_registry()

    @reg.register(name="mkblock", cost=20.0)
    def mkblock(n):
        return [n, n + 1, n + 2]

    @reg.register(name="bump", modifies=(0,), cost=30.0)
    def bump(lst, k):
        for i in range(len(lst)):
            lst[i] += k
        return lst

    @reg.register(name="blk_sum", pure=True, cost=10.0)
    def blk_sum(lst):
        return sum(lst)

    return reg


REGISTRY = _registry()

_PURE_OPS = [("incr", 1), ("decr", 1), ("add", 2), ("mul", 2), ("sub", 2),
             ("is_less", 2), ("max2", 2)]


@st.composite
def _programs(draw):
    """A random well-formed program over ints and mutable blocks.

    Structure: main(n) binds a chain of values, some of which are shared
    mutable blocks that several later bindings destructively bump — the
    adversarial case for copy-on-write — then combines everything
    arithmetically (converting blocks with blk_sum).
    """
    n_bindings = draw(st.integers(2, 7))
    names: list[str] = ["n"]          # int-valued names in scope
    block_names: list[str] = []       # block-valued names in scope
    lines: list[str] = []
    for i in range(n_bindings):
        name = f"v{i}"
        choice = draw(st.integers(0, 7))
        if choice == 6:
            # Package build + zero-copy decomposition.
            a = draw(st.sampled_from(names))
            b = draw(st.sampled_from(names))
            lines.append(f"pkg{i} = <incr({a}), decr({b})>")
            lines.append(f"<{name}, {name}b> = pkg{i}")
            names.extend([name, f"{name}b"])
            continue
        if choice == 7:
            # A local function, closed over an existing name, called twice.
            k = draw(st.sampled_from(names))
            x = draw(st.sampled_from(names))
            lines.append(f"h{i}(p{i}) add(p{i}, {k})")
            lines.append(f"{name} = add(h{i}({x}), h{i}(incr({x})))")
            names.append(name)
            continue
        if choice == 0:
            lines.append(f"{name} = mkblock({draw(st.sampled_from(names))})")
            block_names.append(name)
            continue
        if choice == 1 and block_names:
            src = draw(st.sampled_from(block_names))
            k = draw(st.integers(-3, 3))
            lines.append(f"{name} = bump({src}, {k})")
            block_names.append(name)
            continue
        if choice == 2 and block_names:
            src = draw(st.sampled_from(block_names))
            lines.append(f"{name} = blk_sum({src})")
            names.append(name)
            continue
        if choice == 3:
            cond = draw(st.sampled_from(names))
            a = draw(st.sampled_from(names))
            b = draw(st.sampled_from(names))
            lines.append(
                f"{name} = if is_less({cond}, 2) then incr({a}) else decr({b})"
            )
            names.append(name)
            continue
        op, arity = draw(st.sampled_from(_PURE_OPS))
        args = ", ".join(
            draw(st.sampled_from(names)) for _ in range(arity)
        )
        lines.append(f"{name} = {op}({args})")
        names.append(name)
    # Combine everything so nothing is dead: sum the ints and the blocks.
    acc = names[0]
    for other in names[1:]:
        acc = f"add({acc}, {other})"
    for blk in block_names:
        acc = f"add({acc}, blk_sum({blk}))"
    bindings = "\n      ".join(lines)
    return f"main(n)\n  let {bindings}\n  in {acc}"


class TestDeterminismProperty:
    @settings(max_examples=40, deadline=None)
    @given(_programs(), st.integers(-5, 5), st.integers(0, 1000))
    def test_schedule_independence(self, source, n, seed):
        compiled = compile_source(source, registry=REGISTRY)
        reference = SequentialExecutor().run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        shuffled = SequentialExecutor(seed=seed).run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        fifo = SequentialExecutor(use_priorities=False).run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        assert shuffled == reference
        assert fifo == reference

    @settings(max_examples=25, deadline=None)
    @given(_programs(), st.integers(-5, 5), st.integers(1, 6))
    def test_processor_count_independence(self, source, n, p):
        compiled = compile_source(source, registry=REGISTRY)
        reference = SequentialExecutor().run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        simulated = SimulatedExecutor(uniform(p)).run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        assert simulated == reference

    @settings(max_examples=15, deadline=None)
    @given(_programs(), st.integers(-5, 5))
    def test_threaded_independence(self, source, n):
        compiled = compile_source(source, registry=REGISTRY)
        reference = SequentialExecutor().run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        threaded = ThreadedExecutor(4).run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        assert threaded == reference

    @settings(max_examples=8, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.integers(1, 3),
        st.integers(1, 4),
        st.integers(0, 100),
    )
    def test_process_executor_independence(
        self, source, n, workers, batch, seed
    ):
        # The strongest form of the section-8 guarantee: operator bodies
        # run in other *processes* (every op force-dispatched, payloads
        # through shared memory when big enough), under any worker count,
        # batch size, and scheduling seed — still bit-identical.  The
        # module-level REGISTRY travels to workers by fork inheritance.
        compiled = compile_source(source, registry=REGISTRY)
        reference = SequentialExecutor().run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        remote = ProcessExecutor(
            workers,
            batch_size=batch,
            cost_threshold=0.0,
            shm_threshold=256,
            seed=seed,
        ).run(compiled.graph, args=(n,), registry=REGISTRY).value
        assert remote == reference

    @settings(max_examples=15, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.sampled_from(["none", "operator", "data"]),
    )
    def test_affinity_independence(self, source, n, policy):
        compiled = compile_source(source, registry=REGISTRY)
        reference = SequentialExecutor().run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        numa = SimulatedExecutor(butterfly(3), affinity=policy).run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value
        assert numa == reference


class TestOptimizerProperty:
    @settings(max_examples=40, deadline=None)
    @given(_programs(), st.integers(-5, 5))
    def test_optimizer_preserves_semantics(self, source, n):
        full = compile_source(source, registry=REGISTRY)
        bare = compile_source(source, registry=REGISTRY, optimize_passes=())
        assert (
            full.run(args=(n,)).value == bare.run(args=(n,)).value
        )

    @settings(max_examples=20, deadline=None)
    @given(_programs(), st.integers(-5, 5))
    def test_each_pass_alone_preserves_semantics(self, source, n):
        bare = compile_source(source, registry=REGISTRY, optimize_passes=())
        expected = bare.run(args=(n,)).value
        for single in ("inline", "constprop", "cse", "dce"):
            compiled = compile_source(
                source, registry=REGISTRY, optimize_passes=(single,)
            )
            assert compiled.run(args=(n,)).value == expected, single


class TestScheduleAlgebraProperty:
    @settings(max_examples=25, deadline=None)
    @given(_programs(), st.integers(-5, 5), st.integers(2, 8))
    def test_graham_bound(self, source, n, p):
        compiled = compile_source(source, registry=REGISTRY)
        work = SimulatedExecutor(uniform(1)).run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).ticks
        cp = SimulatedExecutor(uniform(128)).run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).ticks
        t = SimulatedExecutor(uniform(p)).run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).ticks
        assert t >= max(cp, work / p) - 1e-6
        assert t <= work / p + cp + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(_programs(), st.integers(-5, 5))
    def test_more_processors_never_slower(self, source, n):
        compiled = compile_source(source, registry=REGISTRY)
        previous = None
        for p in (1, 2, 4):
            t = SimulatedExecutor(uniform(p)).run(
                compiled.graph, args=(n,), registry=REGISTRY
            ).ticks
            if previous is not None:
                # Greedy list scheduling is not strictly monotone in P
                # (Graham's anomalies), but the slowdown is bounded; allow
                # the classical (2 - 1/p) slack over the previous time.
                assert t <= previous * 2 + 1e-6
            previous = t


class TestGeneratedProgramsAreWellFormed:
    @settings(max_examples=30, deadline=None)
    @given(_programs())
    def test_generator_output_compiles_and_validates(self, source):
        from repro import validate_program

        compiled = compile_source(source, registry=REGISTRY)
        validate_program(compiled.graph)

    @settings(max_examples=15, deadline=None)
    @given(_programs())
    def test_generator_output_round_trips(self, source):
        from repro.lang import parse_program

        p = parse_program(source)
        assert parse_program(unparse(p)) == p


class TestFusionProperty:
    """ISSUE 3: fused execution is bit-identical to unfused execution
    under every executor, any worker count, any scheduling seed."""

    @staticmethod
    def _passes():
        from repro.compiler.passes.pipeline import PASS_ORDER

        return PASS_ORDER + ("fuse",)

    @settings(max_examples=30, deadline=None)
    @given(_programs(), st.integers(-5, 5), st.integers(0, 1000))
    def test_sequential_fused_matches(self, source, n, seed):
        plain = compile_source(source, registry=REGISTRY)
        fused = compile_source(
            source, registry=REGISTRY, optimize_passes=self._passes()
        )
        reference = SequentialExecutor().run(
            plain.graph, args=(n,), registry=REGISTRY
        ).value
        assert SequentialExecutor().run(
            fused.graph, args=(n,), registry=REGISTRY
        ).value == reference
        assert SequentialExecutor(seed=seed).run(
            fused.graph, args=(n,), registry=REGISTRY
        ).value == reference

    @settings(max_examples=12, deadline=None)
    @given(_programs(), st.integers(-5, 5), st.integers(1, 6))
    def test_threaded_fused_matches(self, source, n, workers):
        plain = compile_source(source, registry=REGISTRY)
        fused = compile_source(
            source, registry=REGISTRY, optimize_passes=self._passes()
        )
        reference = SequentialExecutor().run(
            plain.graph, args=(n,), registry=REGISTRY
        ).value
        assert ThreadedExecutor(workers).run(
            fused.graph, args=(n,), registry=REGISTRY
        ).value == reference

    @settings(max_examples=6, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.integers(1, 3),
        st.integers(0, 100),
    )
    def test_process_fused_matches(self, source, n, workers, seed):
        # cost_threshold=0 force-dispatches every fire, fused super-nodes
        # included, so workers exercise lazy recomposition of the chain
        # recipes shipped at pool start.
        plain = compile_source(source, registry=REGISTRY)
        fused = compile_source(
            source, registry=REGISTRY, optimize_passes=self._passes()
        )
        reference = SequentialExecutor().run(
            plain.graph, args=(n,), registry=REGISTRY
        ).value
        assert ProcessExecutor(
            workers, cost_threshold=0.0, shm_threshold=256, seed=seed
        ).run(fused.graph, args=(n,), registry=REGISTRY).value == reference

    @settings(max_examples=12, deadline=None)
    @given(_programs(), st.integers(-5, 5), st.integers(1, 6))
    def test_simulated_fused_matches(self, source, n, p):
        plain = compile_source(source, registry=REGISTRY)
        fused = compile_source(
            source, registry=REGISTRY, optimize_passes=self._passes()
        )
        reference = SequentialExecutor().run(
            plain.graph, args=(n,), registry=REGISTRY
        ).value
        assert SimulatedExecutor(uniform(p)).run(
            fused.graph, args=(n,), registry=REGISTRY
        ).value == reference


class TestDonationProperty:
    """PR 4: the zero-copy memory path (last-use donation + buffer
    pooling) is bit-identical to copy-always execution under every
    executor, worker count, fusion setting, and scheduling seed — the
    generated programs deliberately share mutable blocks across
    destructive bumps, the adversarial case for an in-place handover."""

    @staticmethod
    def _passes(fuse: bool):
        from repro.compiler.passes.pipeline import PASS_ORDER

        return PASS_ORDER + (("fuse", "donate") if fuse else ("donate",))

    @settings(max_examples=30, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.booleans(),
        st.integers(0, 1000),
    )
    def test_sequential_donated_matches(self, source, n, fuse, seed):
        plain = compile_source(source, registry=REGISTRY)
        donated = compile_source(
            source, registry=REGISTRY, optimize_passes=self._passes(fuse)
        )
        reference = SequentialExecutor().run(
            plain.graph, args=(n,), registry=REGISTRY
        ).value
        assert SequentialExecutor().run(
            donated.graph, args=(n,), registry=REGISTRY
        ).value == reference
        assert SequentialExecutor(seed=seed).run(
            donated.graph, args=(n,), registry=REGISTRY
        ).value == reference

    @settings(max_examples=12, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.booleans(),
        st.integers(1, 6),
    )
    def test_threaded_donated_matches(self, source, n, fuse, workers):
        plain = compile_source(source, registry=REGISTRY)
        donated = compile_source(
            source, registry=REGISTRY, optimize_passes=self._passes(fuse)
        )
        reference = SequentialExecutor().run(
            plain.graph, args=(n,), registry=REGISTRY
        ).value
        assert ThreadedExecutor(workers).run(
            donated.graph, args=(n,), registry=REGISTRY
        ).value == reference

    @settings(max_examples=6, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.booleans(),
        st.integers(1, 3),
        st.integers(0, 100),
    )
    def test_process_donated_matches(self, source, n, fuse, workers, seed):
        # cost_threshold=0 force-dispatches every fire, so donated blocks
        # also cross the process boundary (and back) on every path.
        plain = compile_source(source, registry=REGISTRY)
        donated = compile_source(
            source, registry=REGISTRY, optimize_passes=self._passes(fuse)
        )
        reference = SequentialExecutor().run(
            plain.graph, args=(n,), registry=REGISTRY
        ).value
        assert ProcessExecutor(
            workers, cost_threshold=0.0, shm_threshold=256, seed=seed
        ).run(donated.graph, args=(n,), registry=REGISTRY).value == reference

    @settings(max_examples=12, deadline=None)
    @given(_programs(), st.integers(-5, 5), st.integers(1, 6))
    def test_simulated_donated_matches(self, source, n, p):
        plain = compile_source(source, registry=REGISTRY)
        donated = compile_source(
            source, registry=REGISTRY, optimize_passes=self._passes(True)
        )
        reference = SequentialExecutor().run(
            plain.graph, args=(n,), registry=REGISTRY
        ).value
        assert SimulatedExecutor(uniform(p)).run(
            donated.graph, args=(n,), registry=REGISTRY
        ).value == reference


class TestCodegenProperty:
    """ISSUE 7: the codegen backend (fused recipes lowered to generated
    specialized Python) is bit-identical to the step-by-step interpreted
    recipes under every executor, worker count, donation setting, and
    scheduling seed.  Both sides compile with fusion on — codegen only
    changes *how* a fused chain's callable executes, never the graph."""

    @staticmethod
    def _passes(donate: bool, codegen: bool):
        from repro.compiler.passes.pipeline import PASS_ORDER

        graph_passes = ("fuse", "donate") if donate else ("fuse",)
        if codegen:
            graph_passes = graph_passes + ("codegen",)
        return PASS_ORDER + graph_passes

    def _pair(self, source, donate):
        interpreted = compile_source(
            source,
            registry=REGISTRY,
            optimize_passes=self._passes(donate, codegen=False),
        )
        lowered = compile_source(
            source,
            registry=REGISTRY,
            optimize_passes=self._passes(donate, codegen=True),
        )
        return interpreted, lowered

    @settings(max_examples=30, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.booleans(),
        st.integers(0, 1000),
    )
    def test_sequential_codegen_matches(self, source, n, donate, seed):
        interpreted, lowered = self._pair(source, donate)
        reference = SequentialExecutor().run(
            interpreted.graph, args=(n,), registry=REGISTRY
        ).value
        assert SequentialExecutor().run(
            lowered.graph, args=(n,), registry=REGISTRY
        ).value == reference
        assert SequentialExecutor(seed=seed).run(
            lowered.graph, args=(n,), registry=REGISTRY
        ).value == reference

    @settings(max_examples=12, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.booleans(),
        st.integers(1, 6),
    )
    def test_threaded_codegen_matches(self, source, n, donate, workers):
        interpreted, lowered = self._pair(source, donate)
        reference = SequentialExecutor().run(
            interpreted.graph, args=(n,), registry=REGISTRY
        ).value
        assert ThreadedExecutor(workers).run(
            lowered.graph, args=(n,), registry=REGISTRY
        ).value == reference

    @settings(max_examples=6, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.booleans(),
        st.integers(1, 3),
        st.integers(0, 100),
    )
    def test_process_codegen_matches(self, source, n, donate, workers, seed):
        # cost_threshold=0 force-dispatches every fire, so the workers
        # execute from the generated sources shipped at pool start, not
        # the master's bound callables.
        interpreted, lowered = self._pair(source, donate)
        reference = SequentialExecutor().run(
            interpreted.graph, args=(n,), registry=REGISTRY
        ).value
        assert ProcessExecutor(
            workers, cost_threshold=0.0, shm_threshold=256, seed=seed
        ).run(lowered.graph, args=(n,), registry=REGISTRY).value == reference

    @settings(max_examples=12, deadline=None)
    @given(_programs(), st.integers(-5, 5), st.integers(1, 6))
    def test_simulated_codegen_matches(self, source, n, p):
        interpreted, lowered = self._pair(source, donate=True)
        reference = SequentialExecutor().run(
            interpreted.graph, args=(n,), registry=REGISTRY
        ).value
        assert SimulatedExecutor(uniform(p)).run(
            lowered.graph, args=(n,), registry=REGISTRY
        ).value == reference
