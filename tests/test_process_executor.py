"""ProcessExecutor: parity, COW isolation across processes, transport.

The executor's contract is the paper's determinism guarantee extended
over a real process boundary: bit-identical results to the sequential
executor, with copy-on-write isolation now provided by serialization
instead of physical copies.  These tests cover the payload codec
(shared-memory and in-band paths), the dispatch policy, worker error
propagation, the dispatch events, and — most importantly — that a
worker-side destructive write can never leak back into the master's
blocks.
"""

import numpy as np
import pytest

from repro import compile_source
from repro.errors import OperatorError
from repro.obs import (
    EventBus,
    EventLog,
    ResultReceived,
    ShmBlockCreated,
    TaskDispatched,
    TaskFired,
)
from repro.runtime import (
    DispatchPolicy,
    ProcessExecutor,
    RegistryRef,
    SequentialExecutor,
    default_registry,
)
from repro.runtime.operators import OperatorSpec
from repro.runtime.workers import (
    decode_value,
    discard_encoded,
    encode_value,
)


def _numpy_registry():
    reg = default_registry()

    @reg.register(pure=True, cost=2e6)
    def mkarr(n, seed):
        rng = np.random.default_rng(seed)
        return rng.standard_normal((n, n))

    @reg.register(name="scale", modifies=(0,), cost=2e6)
    def scale(a, k):
        a *= k
        return a

    @reg.register(name="smash", modifies=(0,), cost=2e6)
    def smash(a):
        a[:] = -1.0
        return a

    @reg.register(pure=True, cost=2e6)
    def total(a):
        return float(a.sum())

    @reg.register(name="die", cost=2e6)
    def die(x):
        raise ValueError(f"worker boom {x}")

    return reg


NUMPY_REGISTRY = _numpy_registry()

SHARED_BLOCK_SRC = """
main(n)
  let
    a = mkarr(n, 7)
    s1 = total(scale(a, 3))
    s2 = total(smash(a))
    s3 = total(a)
  in add(add(s1, s2), s3)
"""


# ---------------------------------------------------------------------------
# Payload codec
# ---------------------------------------------------------------------------
class TestCodec:
    def test_small_values_stay_in_band(self):
        for obj in (42, "hello", [1, 2, 3], {"k": (1.5, None)}):
            enc = encode_value(obj)
            assert not enc.via_shm
            assert decode_value(enc) == obj

    def test_large_array_travels_via_shm(self):
        a = np.arange(64 * 1024, dtype=np.float64)
        enc = encode_value(a, shm_threshold=4096)
        assert enc.via_shm
        assert enc.shm_nbytes >= a.nbytes
        out = decode_value(enc)
        np.testing.assert_array_equal(out, a)

    def test_decoded_array_is_writable_and_private(self):
        a = np.ones(8192, dtype=np.float64)
        enc = encode_value(a, shm_threshold=1024)
        out = decode_value(enc)
        out[:] = 99.0  # must not raise (readonly) ...
        assert a[0] == 1.0  # ... and must not alias the original

    def test_consumer_unlinks_the_segment(self):
        a = np.zeros(8192, dtype=np.float64)
        enc = encode_value(a, shm_threshold=1024)
        decode_value(enc)
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=enc.shm_name)

    def test_discard_encoded_cleans_up(self):
        a = np.zeros(8192, dtype=np.float64)
        enc = encode_value(a, shm_threshold=1024)
        discard_encoded(enc)
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=enc.shm_name)
        discard_encoded(enc)  # idempotent

    def test_nested_arrays_share_one_segment(self):
        payload = {
            "x": np.arange(4096, dtype=np.float64),
            "y": [np.ones((64, 64)), "tag"],
        }
        enc = encode_value(payload, shm_threshold=1024)
        assert enc.via_shm
        assert len(enc.segments) == 2
        out = decode_value(enc)
        np.testing.assert_array_equal(out["x"], payload["x"])
        np.testing.assert_array_equal(out["y"][0], payload["y"][0])
        assert out["y"][1] == "tag"

    def test_non_contiguous_array_falls_back_in_band(self):
        a = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)[::2, ::2]
        enc = encode_value(a, shm_threshold=64)
        out = decode_value(enc)
        np.testing.assert_array_equal(out, a)


# ---------------------------------------------------------------------------
# Registry rehydration
# ---------------------------------------------------------------------------
class TestRegistryRef:
    def test_factory_ref_loads(self):
        ref = RegistryRef("repro.runtime.operators", "default_registry")
        reg = ref.load()
        assert "incr" in reg

    def test_instance_ref_loads(self):
        ref = RegistryRef("repro.runtime.operators", "builtin_registry")
        assert "add" in ref.load()

    def test_ref_round_trips_through_pickle(self):
        import pickle

        ref = RegistryRef("repro.runtime.operators", "default_registry")
        assert pickle.loads(pickle.dumps(ref)) == ref


# ---------------------------------------------------------------------------
# Dispatch policy
# ---------------------------------------------------------------------------
class TestDispatchPolicy:
    def _spec(self, **kwargs):
        return OperatorSpec(name="op", fn=lambda *a: None, **kwargs)

    def test_cost_hint_decides(self):
        policy = DispatchPolicy(cost_threshold=100.0)
        assert policy.should_dispatch(self._spec(cost=1000.0), (1,))
        assert not policy.should_dispatch(self._spec(cost=1.0), (1,))

    def test_zero_threshold_dispatches_everything(self):
        policy = DispatchPolicy(cost_threshold=0.0)
        assert policy.should_dispatch(self._spec(cost=1.0), (1,))

    def test_hintless_falls_back_to_payload_size(self):
        policy = DispatchPolicy(nbytes_threshold=1024)
        big = np.zeros(4096)
        assert policy.should_dispatch(self._spec(), (big,))
        assert not policy.should_dispatch(self._spec(), (1, 2.0))

    def test_broken_cost_hint_falls_back(self):
        def bad_cost(*args):
            raise TypeError("not written for this payload")

        policy = DispatchPolicy(nbytes_threshold=1024)
        assert policy.should_dispatch(
            self._spec(cost=bad_cost), (np.zeros(4096),)
        )

    def test_pinned_local_never_dispatches(self):
        policy = DispatchPolicy(cost_threshold=0.0, pinned_local={"op"})
        assert not policy.should_dispatch(self._spec(cost=1e9), (1,))


# ---------------------------------------------------------------------------
# Execution parity with the sequential executor
# ---------------------------------------------------------------------------
class TestParity:
    def test_fib_all_local(self):
        compiled = compile_source(
            """
            main(n) fib(n)
            fib(n)
              if is_less(n, 2)
              then n
              else add(fib(sub(n, 1)), fib(sub(n, 2)))
            """
        )
        result = ProcessExecutor(2).run(compiled.graph, args=(12,))
        assert result.value == 144

    def test_fib_all_remote(self):
        compiled = compile_source(
            """
            main(n) fib(n)
            fib(n)
              if is_less(n, 2)
              then n
              else add(fib(sub(n, 1)), fib(sub(n, 2)))
            """
        )
        result = ProcessExecutor(2, cost_threshold=0.0).run(
            compiled.graph, args=(8,)
        )
        assert result.value == 21

    @pytest.mark.parametrize("batch_size", [1, 2, 8])
    def test_numpy_program_bit_identical(self, batch_size):
        compiled = compile_source(SHARED_BLOCK_SRC, registry=NUMPY_REGISTRY)
        seq = SequentialExecutor().run(
            compiled.graph, args=(32,), registry=NUMPY_REGISTRY
        )
        proc = ProcessExecutor(
            2,
            batch_size=batch_size,
            cost_threshold=0.0,
            shm_threshold=1024,
        ).run(compiled.graph, args=(32,), registry=NUMPY_REGISTRY)
        assert proc.value == seq.value

    def test_stats_match_sequential(self):
        # COW decisions are *counted* identically even though remote
        # dispatch skips the physical copies.
        compiled = compile_source(SHARED_BLOCK_SRC, registry=NUMPY_REGISTRY)
        seq = SequentialExecutor().run(
            compiled.graph, args=(16,), registry=NUMPY_REGISTRY
        ).stats
        proc = ProcessExecutor(2, cost_threshold=0.0, shm_threshold=512).run(
            compiled.graph, args=(16,), registry=NUMPY_REGISTRY
        ).stats
        assert proc.ops_executed == seq.ops_executed
        assert proc.tasks_fired == seq.tasks_fired
        assert proc.cow_copies == seq.cow_copies
        assert proc.in_place_writes == seq.in_place_writes

    def test_single_worker(self):
        compiled = compile_source(SHARED_BLOCK_SRC, registry=NUMPY_REGISTRY)
        seq = SequentialExecutor().run(
            compiled.graph, args=(16,), registry=NUMPY_REGISTRY
        )
        proc = ProcessExecutor(1, cost_threshold=0.0).run(
            compiled.graph, args=(16,), registry=NUMPY_REGISTRY
        )
        assert proc.value == seq.value

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessExecutor(0)
        with pytest.raises(ValueError):
            ProcessExecutor(2, batch_size=0)


# ---------------------------------------------------------------------------
# COW isolation across the process boundary
# ---------------------------------------------------------------------------
class TestCowIsolation:
    def test_worker_destructive_write_does_not_leak(self):
        # ``a`` is shared by three consumers; ``smash`` overwrites its
        # argument wholesale inside a worker.  If worker-side writes
        # leaked through shared memory, s3 (and the COW-protected s1)
        # would see -1 everywhere and diverge from the sequential run.
        compiled = compile_source(SHARED_BLOCK_SRC, registry=NUMPY_REGISTRY)
        seq = SequentialExecutor().run(
            compiled.graph, args=(48,), registry=NUMPY_REGISTRY
        )
        proc = ProcessExecutor(
            2, cost_threshold=0.0, shm_threshold=256
        ).run(compiled.graph, args=(48,), registry=NUMPY_REGISTRY)
        assert proc.value == seq.value

    def test_codec_isolation_is_structural(self):
        # The same guarantee at the codec level: mutating the decoded
        # copy never touches the producer's array.
        a = np.ones((64, 64))
        enc = encode_value(a, shm_threshold=256)
        out = decode_value(enc)
        out[:] = -1.0
        assert float(a.sum()) == 64 * 64


# ---------------------------------------------------------------------------
# Errors and events
# ---------------------------------------------------------------------------
class TestErrorsAndEvents:
    def test_worker_exception_surfaces_as_operator_error(self):
        compiled = compile_source(
            "main(n) die(n)", registry=NUMPY_REGISTRY
        )
        with pytest.raises(OperatorError) as excinfo:
            ProcessExecutor(2, cost_threshold=0.0).run(
                compiled.graph, args=(5,), registry=NUMPY_REGISTRY
            )
        assert "die" in str(excinfo.value)
        assert "worker boom 5" in str(excinfo.value.__cause__)

    def test_dispatch_events_emitted(self):
        compiled = compile_source(SHARED_BLOCK_SRC, registry=NUMPY_REGISTRY)
        bus = EventBus()
        log = EventLog()
        log.attach(bus)
        ProcessExecutor(2, cost_threshold=0.0, shm_threshold=256, bus=bus).run(
            compiled.graph, args=(16,), registry=NUMPY_REGISTRY
        )
        dispatched = log.of_type(TaskDispatched)
        received = log.of_type(ResultReceived)
        assert dispatched and received
        assert len(dispatched) == len(received)
        assert {e.call_id for e in dispatched} == {
            e.call_id for e in received
        }
        assert log.of_type(ShmBlockCreated)
        # Worker spans land on worker tracks (master is processor 0).
        op_spans = [e for e in log.of_type(TaskFired) if e.kind == "op"]
        assert op_spans and all(e.processor >= 1 for e in op_spans)

    def test_zero_events_without_subscribers(self):
        compiled = compile_source(SHARED_BLOCK_SRC, registry=NUMPY_REGISTRY)
        bus = EventBus()  # no subscribers: dropped by resolve_bus
        result = ProcessExecutor(2, cost_threshold=0.0, bus=bus).run(
            compiled.graph, args=(16,), registry=NUMPY_REGISTRY
        )
        assert result.tracer is None
