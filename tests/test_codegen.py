"""The codegen backend: fused recipes lowered to generated Python.

ISSUE 7.  The ``codegen`` pass turns each fused recipe ``(steps,
untuple_n)`` into specialized Python source compiled at graph-finalize
time; the source text lives on the node (serializes with the graph,
ships to workers), and every execution side binds it against its own
registry.  These tests pin: the generated text itself, binding
semantics, pass statistics, serialization (including byte-identical
``--no-codegen`` dumps), distinct compile-cache keys, bit-identical
results on the retina and Monte-Carlo applications across executors,
and the critical-path profiler attributing generated-function time to
operator body, not engine overhead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import compile_source
from repro.apps.montecarlo.coordination import compile_pi
from repro.apps.retina import RetinaConfig, compile_retina
from repro.compiler.passes.codegen import generate_source
from repro.compiler.passes.pipeline import PASS_ORDER
from repro.graph.serialize import dumps, loads
from repro.runtime import (
    ProcessExecutor,
    SequentialExecutor,
    ThreadedExecutor,
    default_registry,
)
from repro.runtime.operators import (
    CODEGEN_BINDER_NAME,
    bind_codegen,
    collect_codegen_sources,
    compose_fused,
    node_spec,
)
from repro.tools.cache import cache_key

TINY = RetinaConfig(height=24, width=24, num_iter=2)

CODEGEN_PASSES = PASS_ORDER + ("fuse", "donate", "codegen")
INTERP_PASSES = PASS_ORDER + ("fuse", "donate")

#: A chain the fusion pass collapses: three cheap single-consumer ops.
CHAIN_SRC = "main(n) add(incr(incr(n)), 1)"


def _fused_nodes(graph):
    return [
        node
        for template in graph.templates.values()
        for node in template.nodes
        if node.fused is not None
    ]


class TestGenerateSource:
    def test_multi_step_source_shape(self):
        steps = (
            ("incr", (("i", 0),)),
            ("decr", (("t", 0),)),
            ("add", (("t", 1), ("i", 1))),
        )
        source = generate_source(steps, 0)
        assert f"def {CODEGEN_BINDER_NAME}(_f0, _f1, _f2):" in source
        assert "def _fused(a0, a1):" in source
        assert "t0 = _f0(a0)" in source
        assert "t1 = _f1(t0)" in source
        assert "t2 = _f2(t1, a1)" in source
        assert "return t2" in source
        # The text is a pure function of the recipe.
        assert source == generate_source(steps, 0)

    def test_single_step_binds_member_directly(self):
        steps = (("split", (("i", 0),)),)
        source = generate_source(steps, 2)
        assert "return _f0" in source
        assert "_fused" not in source  # no wrapper frame

    def test_source_compiles_and_computes(self):
        steps = (
            ("incr", (("i", 0),)),
            ("add", (("t", 0), ("i", 1))),
        )
        fn = bind_codegen(
            generate_source(steps, 0), steps, default_registry()
        )
        assert fn(4, 10) == 15  # (4+1) + 10

    def test_untuple_marker_in_header(self):
        steps = (("incr", (("i", 0),)), ("split3", (("t", 0),)))
        assert ">untuple3" in generate_source(steps, 3).splitlines()[0]


class TestBinding:
    def test_bound_fn_matches_interpreted_composition(self):
        reg = default_registry()
        steps = (
            ("incr", (("i", 0),)),
            ("mul", (("t", 0), ("i", 1))),
            ("sub", (("t", 1), ("i", 0))),
        )
        interpreted = compose_fused("fused:test", steps, 0, reg).fn
        generated = bind_codegen(generate_source(steps, 0), steps, reg)
        for a, b in [(0, 0), (3, 4), (-7, 2)]:
            assert generated(a, b) == interpreted(a, b)

    def test_binding_uses_calling_registry(self):
        reg = default_registry()

        @reg.register(name="shadow", pure=True)
        def shadow(x):
            return x * 100

        steps = (("shadow", (("i", 0),)), ("incr", (("t", 0),)))
        fn = bind_codegen(generate_source(steps, 0), steps, reg)
        assert fn(2) == 201

    def test_node_spec_rebinds_from_source(self):
        compiled = compile_source(
            CHAIN_SRC, optimize_passes=CODEGEN_PASSES
        )
        nodes = _fused_nodes(compiled.graph)
        assert nodes, "chain program must fuse"
        # Round-trip through JSON: codegen_fn is gone, only source text
        # survives — node_spec must still produce a working callable.
        restored = loads(dumps(compiled.graph))
        for node in _fused_nodes(restored):
            assert node.codegen is not None
            assert node.codegen_fn is None
            spec = node_spec(default_registry(), node, cache={})
            assert callable(spec.fn)
        value = SequentialExecutor().run(restored, args=(4,)).value
        assert value == SequentialExecutor().run(
            compiled.graph, args=(4,)
        ).value


class TestPass:
    def test_lowers_every_fused_node(self):
        compiled = compile_retina(2, TINY, fuse=True, codegen=True)
        nodes = _fused_nodes(compiled.graph)
        assert nodes
        assert all(n.codegen is not None for n in nodes)
        assert all(n.codegen_fn is not None for n in nodes)

    def test_stats_reported(self):
        compiled = compile_source(
            CHAIN_SRC, optimize_passes=CODEGEN_PASSES
        )
        stats = compiled.optimization.stats
        assert stats.get("codegen.chains_lowered", 0) >= 1
        assert 0 < stats.get("codegen.unique_sources", 0) <= stats[
            "codegen.chains_lowered"
        ]

    def test_describe_marks_lowered_nodes(self):
        compiled = compile_source(
            CHAIN_SRC, optimize_passes=CODEGEN_PASSES
        )
        described = "\n".join(
            t.describe() for t in compiled.graph.templates.values()
        )
        assert " codegen" in described

    def test_no_codegen_pass_leaves_nodes_clean(self):
        compiled = compile_source(CHAIN_SRC, optimize_passes=INTERP_PASSES)
        assert all(
            n.codegen is None and n.codegen_fn is None
            for n in _fused_nodes(compiled.graph)
        )

    def test_collect_codegen_sources(self):
        lowered = compile_source(CHAIN_SRC, optimize_passes=CODEGEN_PASSES)
        sources = collect_codegen_sources(lowered.graph)
        assert sources
        assert all(CODEGEN_BINDER_NAME in s for s in sources.values())
        interp = compile_source(CHAIN_SRC, optimize_passes=INTERP_PASSES)
        assert collect_codegen_sources(interp.graph) == {}


class TestSerialization:
    def test_codegen_round_trips(self):
        compiled = compile_source(CHAIN_SRC, optimize_passes=CODEGEN_PASSES)
        text = dumps(compiled.graph)
        assert dumps(loads(text)) == text

    def test_no_codegen_dump_is_byte_identical(self):
        # A --no-codegen compilation must serve byte-identical dumps to
        # builds that never had the pass: the "codegen" key is simply
        # absent, not null.
        compiled = compile_source(CHAIN_SRC, optimize_passes=INTERP_PASSES)
        text = dumps(compiled.graph)
        assert '"codegen"' not in text
        lowered = compile_source(CHAIN_SRC, optimize_passes=CODEGEN_PASSES)
        assert '"codegen"' in dumps(lowered.graph)


class TestCacheKeys:
    def test_pass_tuple_separates_codegen_entries(self):
        on = cache_key(CHAIN_SRC, None, CODEGEN_PASSES)
        off = cache_key(CHAIN_SRC, None, INTERP_PASSES)
        assert on != off


@pytest.fixture(scope="module")
def retina_pair():
    return (
        compile_retina(2, TINY, fuse=True, donate=True),
        compile_retina(2, TINY, fuse=True, donate=True, codegen=True),
    )


@pytest.fixture(scope="module")
def montecarlo_pair():
    return (
        compile_pi(batch_size=2000, optimize_passes=INTERP_PASSES),
        compile_pi(batch_size=2000, optimize_passes=CODEGEN_PASSES),
    )


class TestBitIdentical:
    """Acceptance: retina and Monte-Carlo results are bit-identical with
    ``--codegen`` vs ``--no-codegen`` under every real executor."""

    def test_retina_sequential(self, retina_pair):
        interp, lowered = retina_pair
        ri = SequentialExecutor().run(interp.graph, registry=interp.registry)
        rl = SequentialExecutor().run(
            lowered.graph, registry=lowered.registry
        )
        assert rl.value.signature() == ri.value.signature()
        assert rl.stats.tasks_fired == ri.stats.tasks_fired

    def test_retina_threaded(self, retina_pair):
        interp, lowered = retina_pair
        reference = SequentialExecutor().run(
            interp.graph, registry=interp.registry
        ).value.signature()
        assert ThreadedExecutor(3).run(
            lowered.graph, registry=lowered.registry
        ).value.signature() == reference

    def test_retina_process(self, retina_pair):
        interp, lowered = retina_pair
        reference = SequentialExecutor().run(
            interp.graph, registry=interp.registry
        ).value.signature()
        # cost_threshold=0 force-dispatches every firing, so workers run
        # from the shipped generated sources, not the master's bindings.
        assert ProcessExecutor(2, cost_threshold=0.0).run(
            lowered.graph, registry=lowered.registry
        ).value.signature() == reference

    def test_montecarlo_sequential_and_threaded(self, montecarlo_pair):
        interp, lowered = montecarlo_pair
        args = (4,)
        reference = SequentialExecutor().run(
            interp.graph, args=args, registry=interp.registry
        ).value
        assert SequentialExecutor().run(
            lowered.graph, args=args, registry=lowered.registry
        ).value == reference
        assert ThreadedExecutor(2).run(
            lowered.graph, args=args, registry=lowered.registry
        ).value == reference

    def test_montecarlo_process(self, montecarlo_pair):
        interp, lowered = montecarlo_pair
        args = (4,)
        reference = SequentialExecutor().run(
            interp.graph, args=args, registry=interp.registry
        ).value
        assert ProcessExecutor(2).run(
            lowered.graph, args=args, registry=lowered.registry
        ).value == reference


class TestCritpathAttribution:
    """ISSUE 7 satellite: time spent inside a generated function is
    operator body, not engine overhead — the ``OpStarted``/``OpFinished``
    bracket wraps the specialized callable exactly as it wraps an
    interpreted one, and attribution reconciles with the wall clock."""

    @staticmethod
    def _heavy_program():
        reg = default_registry()

        # Cost hints stay under FUSE_COST_THRESHOLD so the chain fuses;
        # the *wall* cost of churn is ~1 ms of real array math, which is
        # what the attribution must land in operator_body.
        @reg.register(name="churn", pure=True, cost=50.0)
        def churn(n):
            return float(np.sqrt(np.arange(120_000, dtype=np.float64)).sum())

        @reg.register(name="scale2", pure=True, cost=10.0)
        def scale2(x):
            return x * 2.0

        return compile_source(
            "main(n) scale2(churn(n))",
            registry=reg,
            optimize_passes=CODEGEN_PASSES,
        ), reg

    def test_generated_frames_attribute_to_operator_body(self):
        from repro.obs import RunContext
        from repro.obs.critpath import RECONCILIATION_TOLERANCE

        compiled, reg = self._heavy_program()
        assert _fused_nodes(compiled.graph), "churn>scale2 must fuse"
        ctx = RunContext(record_events=True, flight_recorder=False)
        executor = SequentialExecutor()
        executor.run_ctx = ctx
        result = executor.run(compiled.graph, args=(3,), registry=reg)
        report = ctx.critical_path(result.wall_seconds)
        attribution = report.attribution
        assert report.reconciliation_error <= RECONCILIATION_TOLERANCE
        # The dominant cost is the generated chain's body; if generated
        # frames were misattributed, operator_body would collapse toward
        # zero and engine_overhead would absorb the ~ms of array math.
        assert attribution["operator_body"] > 0.0
        assert (
            attribution["operator_body"]
            > 5 * attribution["engine_overhead"]
        )


class TestEngineIntegration:
    def test_plan_cache_reuse_across_runs(self):
        # Same program object run twice on fresh executors: the second
        # run serves its op plans from the module-level cache and must
        # be value-identical.
        compiled = compile_source(CHAIN_SRC, optimize_passes=CODEGEN_PASSES)
        first = SequentialExecutor().run(compiled.graph, args=(5,)).value
        second = SequentialExecutor().run(compiled.graph, args=(5,)).value
        assert first == second == 8

    def test_profile_ops_measures_bodies(self):
        compiled = compile_retina(2, TINY, fuse=True, codegen=True)
        result = SequentialExecutor(profile_ops=True).run(
            compiled.graph, registry=compiled.registry
        )
        assert 0.0 < result.stats.op_body_seconds <= result.wall_seconds
