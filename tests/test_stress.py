"""Stress shapes: deep recursion, wide fan-outs, long loops, big graphs."""

from repro import compile_source, default_registry
from repro.machine import SimulatedExecutor, uniform


class TestDepth:
    def test_deep_non_tail_recursion(self):
        # 800 live activations unwound through the ready queue — no
        # Python recursion blowup (deliveries cross task boundaries).
        compiled = compile_source(
            """
            main(n) sum_to(n)
            sum_to(n) if n then add(n, sum_to(sub(n, 1))) else 0
            """
        )
        result = compiled.run(args=(800,))
        assert result.value == 800 * 801 // 2
        assert result.stats.activation_stats["peak_live"] >= 800

    def test_deep_tail_recursion_is_constant_space(self):
        compiled = compile_source(
            """
            main(n) go(0, n)
            go(i, n) if is_less(i, n) then go(incr(i), n) else i
            """
        )
        result = compiled.run(args=(5000,))
        assert result.value == 5000
        assert result.stats.activation_stats["peak_live"] <= 3

    def test_long_iterate(self):
        compiled = compile_source(
            "main(n) iterate { i = 0, incr(i)  s = 0, add(s, i) }"
            " while is_less(i, n), result s"
        )
        assert compiled.run(args=(2000,)).value == 2000 * 1999 // 2

    def test_deeply_nested_conditionals(self):
        depth = 60
        expr = "n"
        for _ in range(depth):
            expr = f"if is_greater(n, 0) then {expr} else neg(n)"
        compiled = compile_source(f"main(n) {expr}")
        assert compiled.run(args=(5,)).value == 5
        assert compiled.run(args=(-5,)).value == 5


class TestWidth:
    def test_wide_fork_join(self):
        width = 200
        reg = default_registry()
        reg.register(name="leaf", pure=True, cost=100.0)(lambda i: i)
        bindings = "\n      ".join(f"w{i} = leaf({i})" for i in range(width))
        acc = "w0"
        for i in range(1, width):
            acc = f"add({acc}, w{i})"
        compiled = compile_source(
            f"main()\n  let {bindings}\n  in {acc}", registry=reg
        )
        result = SimulatedExecutor(uniform(64)).run(
            compiled.graph, registry=reg
        )
        assert result.value == width * (width - 1) // 2
        # 200 independent leaves on 64 processors: ~4 waves.
        assert result.ticks < 100.0 * (width / 64 + 2) + width * 2

    def test_wide_dynamic_map(self):
        compiled = compile_source(
            "main(n) par_index_map(incr, 0, n)", prelude=True
        )
        value = compiled.run(args=(300,)).value
        assert value == list(range(1, 301))


class TestBigPrograms:
    def test_many_functions(self):
        n = 120
        parts = [f"f{i}(x) incr(f{i + 1}(x))" for i in range(n - 1)]
        parts.append(f"f{n - 1}(x) incr(x)")
        source = f"main(x) f0(x)\n" + "\n".join(parts)
        compiled = compile_source(source, optimize_passes=("constprop", "dce"))
        assert compiled.run(args=(0,)).value == n

    def test_inliner_collapses_call_chain(self):
        n = 30
        parts = [f"g{i}(x) g{i + 1}(incr(x))" for i in range(n - 1)]
        parts.append(f"g{n - 1}(x) x")
        source = "main(x) g0(x)\n" + "\n".join(parts)
        full = compile_source(source)
        bare = compile_source(source, optimize_passes=())
        assert full.run(args=(0,)).value == bare.run(args=(0,)).value == n - 1
        # The chain inlines away: far fewer expansions at run time.
        assert (
            full.run(args=(0,)).stats.expansions
            < bare.run(args=(0,)).stats.expansions
        )
