"""Checkpoint/resume: the PR 10 durability tentpole.

The headline property (``TestCheckpointProperty``): a streaming run
that is checkpointed, killed at an arbitrary item boundary, and resumed
produces *bit-identical* sink output — and the identical final value —
to the same run left uninterrupted, across executors, worker counts,
optimization pass sets, and input offsets.  Single-assignment (§8) is
the argument: committed items are final, uncommitted work left no
observable effect, so frontier + carry + offsets is a consistent cut.
"""

from __future__ import annotations

import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_source
from repro.compiler.passes.pipeline import PASS_ORDER
from repro.faults import parse_fault_spec
from repro.faults.spec import MASTER_SCOPE, FaultSpecError
from repro.runtime.checkpoint import (
    CHECKPOINT_MAGIC,
    Checkpoint,
    CheckpointCadence,
    CheckpointError,
    CheckpointMismatchError,
    canonical_flags,
    program_fingerprint,
    read_checkpoint,
    registry_fingerprint,
    verify_compatible,
    write_checkpoint,
)
from repro.runtime.operators import default_registry
from repro.runtime.stream import (
    JsonlSink,
    MemorySink,
    StreamRunner,
    count_source,
)
from repro.runtime.supervise import FaultPolicy

SUM_SRC = """
main(acc, x)
  add(acc, mul(x, x))
"""

OTHER_SRC = """
main(acc, x)
  add(acc, mul(x, add(x, 1)))
"""


def _manifest(**over):
    base = {
        "seq": 1,
        "items": 3,
        "fires": 30,
        "source_offset": 3,
        "sink": {"items": 3, "digest": "d" * 64},
        "program": "p" * 40,
        "registry": "r" * 40,
        "flags": {"carry": True},
    }
    base.update(over)
    return base


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        payload = {"carry": [1, 2, 3], "stats": {"tasks_fired": 30.0}}
        nbytes = write_checkpoint(path, _manifest(), payload)
        assert nbytes == os.path.getsize(path)
        ckpt = read_checkpoint(path)
        assert ckpt.payload == payload
        assert ckpt.items == 3
        assert ckpt.fires == 30
        assert ckpt.seq == 1
        assert ckpt.source_offset == 3
        assert ckpt.sink_state == {"items": 3, "digest": "d" * 64}

    def test_write_leaves_no_tmp_file(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        write_checkpoint(path, _manifest(), {"carry": None})
        assert os.listdir(tmp_path) == ["run.ckpt"]

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        write_checkpoint(path, _manifest(seq=1), {"carry": 1})
        write_checkpoint(path, _manifest(seq=2), {"carry": 2})
        ckpt = read_checkpoint(path)
        assert ckpt.seq == 2
        assert ckpt.payload["carry"] == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"NOTAMAGI" + b"\x00" * 32)
        with pytest.raises(CheckpointError, match="magic"):
            read_checkpoint(str(path))

    def test_truncated_payload(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        write_checkpoint(path, _manifest(), {"carry": list(range(100))})
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:-20])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_corrupt_payload_byte(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        write_checkpoint(path, _manifest(), {"carry": list(range(100))})
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(CheckpointError, match="hash mismatch"):
            read_checkpoint(path)

    def test_header_not_json(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        import struct

        path.write_bytes(
            CHECKPOINT_MAGIC + struct.pack("<I", 4) + b"}{!(" + b"rest"
        )
        with pytest.raises(CheckpointError, match="JSON"):
            read_checkpoint(str(path))

    def test_future_version_refused_with_key(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        write_checkpoint(
            path, _manifest(), {"carry": None}
        )
        data = bytearray(open(path, "rb").read())
        blob = bytes(data).replace(
            b'"format_version": 1', b'"format_version": 9'
        )
        assert blob != bytes(data), "version field must be present"
        with open(path, "wb") as fh:
            fh.write(blob)
        with pytest.raises(CheckpointMismatchError) as err:
            read_checkpoint(path)
        assert err.value.key == "version"


class TestCompatibilityGates:
    def _ckpt(self) -> Checkpoint:
        return Checkpoint(
            path="x.ckpt", manifest=_manifest(), payload={}
        )

    def test_matching_identity_passes(self):
        verify_compatible(
            self._ckpt(),
            program_fp="p" * 40,
            registry_fp="r" * 40,
            flags={"carry": True},
        )

    def test_program_mismatch_names_key(self):
        with pytest.raises(CheckpointMismatchError) as err:
            verify_compatible(
                self._ckpt(),
                program_fp="q" * 40,
                registry_fp="r" * 40,
                flags={"carry": True},
            )
        assert err.value.key == "program"
        assert err.value.expected == "p" * 40
        assert err.value.found == "q" * 40

    def test_registry_mismatch_names_key(self):
        with pytest.raises(CheckpointMismatchError) as err:
            verify_compatible(
                self._ckpt(),
                program_fp="p" * 40,
                registry_fp="s" * 40,
                flags={"carry": True},
            )
        assert err.value.key == "registry"

    def test_flags_mismatch_names_key(self):
        with pytest.raises(CheckpointMismatchError) as err:
            verify_compatible(
                self._ckpt(),
                program_fp="p" * 40,
                registry_fp="r" * 40,
                flags={"carry": True, "passes": ["fuse"]},
            )
        assert err.value.key == "flags"

    def test_flag_order_does_not_matter(self):
        assert canonical_flags({"a": 1, "b": 2}) == canonical_flags(
            {"b": 2, "a": 1}
        )


class TestFingerprints:
    def test_program_fingerprint_sees_graph_changes(self):
        a = program_fingerprint(compile_source(SUM_SRC).graph)
        b = program_fingerprint(compile_source(OTHER_SRC).graph)
        assert a != b
        assert a == program_fingerprint(compile_source(SUM_SRC).graph)

    def test_pass_set_changes_program_fingerprint(self):
        plain = program_fingerprint(compile_source(SUM_SRC).graph)
        fused = program_fingerprint(
            compile_source(
                SUM_SRC, optimize_passes=PASS_ORDER + ("fuse",)
            ).graph
        )
        assert plain != fused

    def test_registry_fingerprint_sees_interface_changes(self):
        base = registry_fingerprint(default_registry())
        extended = default_registry()

        @extended.register(name="extra_op", pure=True)
        def extra_op(x):
            return x

        assert registry_fingerprint(extended) != base
        assert registry_fingerprint(default_registry()) == base


class TestResumeRefusal:
    """The StreamRunner refuses a foreign checkpoint, naming the key."""

    def _checkpointed_run(self, tmp_path) -> str:
        path = str(tmp_path / "run.ckpt")
        runner = StreamRunner(
            compile_source(SUM_SRC),
            carry=True,
            initial=0,
            checkpoint_path=path,
        )
        runner.run(count_source(4), MemorySink())
        return path

    def test_different_program_refused(self, tmp_path):
        ckpt = self._checkpointed_run(tmp_path)
        runner = StreamRunner(
            compile_source(OTHER_SRC), carry=True, initial=0
        )
        with pytest.raises(CheckpointMismatchError) as err:
            runner.run(count_source(4), MemorySink(), resume=ckpt)
        assert err.value.key == "program"

    def test_different_registry_refused(self, tmp_path):
        ckpt = self._checkpointed_run(tmp_path)
        registry = default_registry()

        @registry.register(name="novel_op", pure=True)
        def novel_op(x):
            return x

        runner = StreamRunner(
            compile_source(SUM_SRC).graph,
            registry,
            carry=True,
            initial=0,
        )
        with pytest.raises(CheckpointMismatchError) as err:
            runner.run(count_source(4), MemorySink(), resume=ckpt)
        assert err.value.key == "registry"

    def test_different_flags_refused(self, tmp_path):
        ckpt = self._checkpointed_run(tmp_path)
        runner = StreamRunner(
            compile_source(SUM_SRC),
            carry=True,
            initial=0,
            flags={"passes": ["fuse", "donate"]},
        )
        with pytest.raises(CheckpointMismatchError) as err:
            runner.run(count_source(4), MemorySink(), resume=ckpt)
        assert err.value.key == "flags"

    def test_refusal_leaves_sink_untouched(self, tmp_path):
        ckpt = self._checkpointed_run(tmp_path)
        sink_path = str(tmp_path / "precious.jsonl")
        with open(sink_path, "w") as fh:
            fh.write("42\n")
        sink = JsonlSink(sink_path, resume=True)
        runner = StreamRunner(
            compile_source(OTHER_SRC), carry=True, initial=0
        )
        with pytest.raises(CheckpointMismatchError):
            runner.run(count_source(4), sink, resume=ckpt)
        sink.close()
        assert open(sink_path).read() == "42\n"


class TestCadence:
    def test_disabled_by_default(self):
        cadence = CheckpointCadence()
        assert not cadence.enabled
        assert not cadence.due(10**9)

    def test_fires_cadence(self):
        cadence = CheckpointCadence(every_fires=10)
        cadence.mark(0)
        assert not cadence.due(9)
        assert cadence.due(10)
        cadence.mark(10)
        assert not cadence.due(19)
        assert cadence.due(25)

    def test_seconds_cadence(self, monkeypatch):
        import repro.runtime.checkpoint as ckpt_mod

        now = [100.0]
        monkeypatch.setattr(ckpt_mod.time, "monotonic", lambda: now[0])
        cadence = CheckpointCadence(every_seconds=5.0)
        cadence.mark(0)
        now[0] = 104.9
        assert not cadence.due(0)
        now[0] = 105.1
        assert cadence.due(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointCadence(every_fires=0)
        with pytest.raises(ValueError):
            CheckpointCadence(every_seconds=0.0)


class TestFaultPolicyCheckpointKnob:
    def test_parse_checkpoint_seconds(self):
        policy = FaultPolicy.parse("retries=2,checkpoint=1.5")
        assert policy.checkpoint == 1.5
        assert policy.max_retries == 2

    def test_parse_checkpoint_off(self):
        assert FaultPolicy.parse("checkpoint=none").checkpoint is None
        assert FaultPolicy.parse("checkpoint=off").checkpoint is None

    def test_negative_checkpoint_rejected(self):
        with pytest.raises(ValueError, match="checkpoint"):
            FaultPolicy(checkpoint=-1.0)

    def test_wall_clock_cadence_reaches_runner(self, monkeypatch, tmp_path):
        path = str(tmp_path / "run.ckpt")
        runner = StreamRunner(
            compile_source(SUM_SRC),
            carry=True,
            initial=0,
            checkpoint_path=path,
            fault_policy=FaultPolicy(checkpoint=0.000001),
        )
        result = runner.run(count_source(3), MemorySink())
        # Every item boundary exceeds the 1µs cadence, plus the final one.
        assert result.checkpoints_written == 4


class TestMasterKill:
    def test_parse(self):
        spec = parse_fault_spec("masterkill:nth=3")
        assert spec.clauses[0].kind == "masterkill"
        assert spec.clauses[0].nth == 3

    def test_needs_trigger(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("masterkill")

    def test_fires_sigkill_on_nth_boundary(self, monkeypatch):
        import repro.faults.spec as spec_mod

        kills = []
        monkeypatch.setattr(
            spec_mod.os, "kill", lambda pid, sig: kills.append((pid, sig))
        )
        injector = parse_fault_spec("masterkill:nth=2").build()
        injector.on_master_boundary()
        assert kills == []
        injector.on_master_boundary()
        assert len(kills) == 1
        import signal

        assert kills[0] == (os.getpid(), signal.SIGKILL)
        # times cap defaults to 1 for nth clauses: no third kill.
        injector.on_master_boundary()
        assert len(kills) == 1

    def test_inert_in_worker_process(self, monkeypatch):
        import repro.faults.spec as spec_mod

        kills = []
        monkeypatch.setattr(
            spec_mod.os, "kill", lambda pid, sig: kills.append(pid)
        )
        monkeypatch.setattr(
            spec_mod, "_in_worker_process", lambda: True
        )
        injector = parse_fault_spec("masterkill:nth=1").build()
        injector.on_master_boundary()
        assert kills == []

    def test_masterkill_ignored_by_operator_calls(self):
        injector = parse_fault_spec("masterkill:nth=1").build()
        injector.on_call("add")  # must not raise, delay, or count
        assert injector.injected == 0

    def test_counts_under_master_scope(self, monkeypatch):
        import repro.faults.spec as spec_mod

        monkeypatch.setattr(spec_mod.os, "kill", lambda *a: None)
        injector = parse_fault_spec("masterkill:nth=1").build()
        injector.on_master_boundary()
        assert any(op == MASTER_SCOPE for (_, op) in injector._counts)


class TestInjectorState:
    def test_state_round_trip_preserves_decisions(self):
        spec = parse_fault_spec("raise:op=add,p=0.4,seed=9,times=100")
        a = spec.build()
        outcomes_a = []
        for _ in range(10):
            try:
                a.on_call("add")
                outcomes_a.append(False)
            except Exception:
                outcomes_a.append(True)
        state = a.state_dict()
        assert state == pickle.loads(pickle.dumps(state))

        b = spec.build()
        b.load_state(state)
        outcomes_b = []
        for _ in range(10):
            try:
                b.on_call("add")
                outcomes_b.append(False)
            except Exception:
                outcomes_b.append(True)
        c = spec.build()
        for _ in range(10):
            try:
                c.on_call("add")
            except Exception:
                pass
        outcomes_c = []
        for _ in range(10):
            try:
                c.on_call("add")
                outcomes_c.append(False)
            except Exception:
                outcomes_c.append(True)
        assert outcomes_b == outcomes_c
        assert any(outcomes_a + outcomes_b), "p=0.4 must fire in 20 calls"


class _Exec:
    """One executor configuration for the property."""

    def __init__(self, name: str, workers: int) -> None:
        self.name = name
        self.workers = workers

    def __repr__(self) -> str:
        return f"{self.name}x{self.workers}"


_EXECUTORS = st.sampled_from(
    [_Exec("sequential", 1), _Exec("threaded", 2), _Exec("threaded", 4)]
)


class TestCheckpointProperty:
    """checkpointed + killed + resumed ≡ uninterrupted (the tentpole)."""

    @settings(max_examples=25, deadline=None)
    @given(
        ex=_EXECUTORS,
        n_items=st.integers(2, 14),
        stop_after=st.integers(1, 14),
        every_fires=st.integers(1, 40),
        fuse=st.booleans(),
        base=st.integers(-3, 3),
    )
    def test_resume_is_bit_identical(
        self, tmp_path_factory, ex, n_items, stop_after, every_fires, fuse, base
    ):
        td = tmp_path_factory.mktemp("ckpt")
        passes = PASS_ORDER + (("fuse",) if fuse else ())
        compiled = compile_source(SUM_SRC, optimize_passes=passes)
        make_args = lambda item, carry: (carry, item + base)  # noqa: E731
        flags = {"base": base, "passes": list(passes)}

        def runner(**kw):
            return StreamRunner(
                compiled,
                executor=ex.name,
                n_workers=ex.workers,
                carry=True,
                initial=0,
                make_args=make_args,
                flags=flags,
                **kw,
            )

        ref_path = str(td / "ref.jsonl")
        ref_sink = JsonlSink(ref_path)
        reference = runner().run(count_source(n_items), ref_sink)
        ref_sink.close()

        ckpt = str(td / "run.ckpt")
        out_path = str(td / "out.jsonl")
        crash_sink = JsonlSink(out_path)
        crashed = runner(
            checkpoint_path=ckpt, checkpoint_every=every_fires
        )
        crashed.run(
            count_source(n_items),
            crash_sink,
            stop_after_items=min(stop_after, n_items),
        )
        crash_sink.close()

        # Resume from the last durable checkpoint; if the crash landed
        # before the first snapshot, recovery is a fresh start.
        have_ckpt = os.path.exists(ckpt)
        resumed_sink = JsonlSink(out_path, resume=have_ckpt)
        result = runner(
            checkpoint_path=ckpt, checkpoint_every=every_fires
        ).run(
            count_source(n_items),
            resumed_sink,
            resume=ckpt if have_ckpt else None,
        )
        resumed_sink.close()

        with open(ref_path, "rb") as fh:
            want = fh.read()
        with open(out_path, "rb") as fh:
            got = fh.read()
        assert got == want, "sink bytes must be bit-identical"
        assert result.value == reference.value
        assert result.sink_digest == reference.sink_digest

    def test_process_executor_resume(self, tmp_path):
        """The warm-pool executor path, once (spawn cost keeps it out of
        the hypothesis loop)."""
        compiled = compile_source(SUM_SRC)

        def runner(**kw):
            return StreamRunner(
                compiled,
                executor="process",
                n_workers=2,
                carry=True,
                initial=0,
                **kw,
            )

        ref_sink = JsonlSink(str(tmp_path / "ref.jsonl"))
        r = runner()
        try:
            reference = r.run(count_source(6), ref_sink)
        finally:
            r.close()
        ref_sink.close()

        ckpt = str(tmp_path / "run.ckpt")
        out = str(tmp_path / "out.jsonl")
        crash_sink = JsonlSink(out)
        r = runner(checkpoint_path=ckpt, checkpoint_every=1)
        try:
            r.run(count_source(6), crash_sink, stop_after_items=3)
        finally:
            r.close()
        crash_sink.close()

        resumed_sink = JsonlSink(out, resume=True)
        r = runner(checkpoint_path=ckpt, checkpoint_every=1)
        try:
            result = r.run(count_source(6), resumed_sink, resume=ckpt)
        finally:
            r.close()
        resumed_sink.close()

        assert open(out).read() == open(str(tmp_path / "ref.jsonl")).read()
        assert result.value == reference.value

    def test_resume_after_clean_finish_is_a_noop_replay(self, tmp_path):
        """Resuming from the final checkpoint re-fires nothing."""
        compiled = compile_source(SUM_SRC)
        ckpt = str(tmp_path / "run.ckpt")
        out = str(tmp_path / "out.jsonl")
        sink = JsonlSink(out)
        runner = StreamRunner(
            compiled, carry=True, initial=0, checkpoint_path=ckpt
        )
        first = runner.run(count_source(5), sink)
        sink.close()
        bytes_before = open(out, "rb").read()

        resumed_sink = JsonlSink(out, resume=True)
        again = StreamRunner(
            compiled, carry=True, initial=0, checkpoint_path=ckpt
        ).run(count_source(5), resumed_sink, resume=ckpt)
        resumed_sink.close()
        assert again.items == first.items
        assert again.fires == first.fires  # nothing replayed
        assert open(out, "rb").read() == bytes_before
