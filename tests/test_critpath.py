"""Critical-path profiler: causal DAG, reconciliation, comparison."""

import pytest

from repro import compile_source
from repro.obs import RunContext
from repro.obs.critpath import (
    RECONCILIATION_TOLERANCE,
    compare_critical_paths,
    critical_path,
)
from repro.runtime import ProcessExecutor, SequentialExecutor
from repro.tools.compare_runs import compare
from repro.tools.timing_report import critical_path_section

from tests.conftest import FIB_SRC, FORK_JOIN_SRC, fork_join_registry


def _profiled_run(executor, compiled, args, registry=None):
    ctx = RunContext(record_events=True, flight_recorder=False)
    executor.run_ctx = ctx
    result = executor.run(compiled.graph, args=args, registry=registry)
    return result, ctx.critical_path(result.wall_seconds)


class TestSequentialProfile:
    @pytest.fixture(scope="class")
    def profiled(self):
        compiled = compile_source(FIB_SRC)
        return _profiled_run(SequentialExecutor(), compiled, (12,))

    def test_reconciles_with_wallclock(self, profiled):
        result, report = profiled
        assert report.wall_seconds == result.wall_seconds
        assert report.reconciliation_error <= RECONCILIATION_TOLERANCE

    def test_every_firing_captured(self, profiled):
        result, report = profiled
        assert report.n_firings == result.stats.tasks_fired

    def test_path_is_a_causal_chain(self, profiled):
        _, report = profiled
        path = report.path
        assert path, "a nonempty run must have a nonempty critical path"
        # The chain starts at a root and each link names its predecessor.
        assert path[0].parent_seq is None
        for prev, node in zip(path, path[1:]):
            assert node.parent_seq == prev.seq
            assert node.start >= prev.start
        # Path time can't exceed the wall it explains.
        assert report.path_seconds <= report.wall_seconds * (
            1 + RECONCILIATION_TOLERANCE
        )

    def test_slack_nonnegative_and_ranked(self, profiled):
        _, report = profiled
        assert all(s >= 0.0 for s in report.slack.values())
        ranked = report.top_slack(10)
        assert ranked == sorted(ranked, key=lambda kv: -kv[1])
        # top_slack excludes on-path firings: the slackest off-path firing
        # must have at least as much slack as anything it skipped.
        on_path = {r.seq for r in report.path}
        off_path_max = max(
            (s for seq, s in report.slack.items() if seq not in on_path),
            default=0.0,
        )
        if ranked:
            assert ranked[0][1] == pytest.approx(off_path_max)

    def test_describe_and_section_render(self, profiled):
        _, report = profiled
        text = report.describe()
        assert "critical path" in text
        assert "reconciliation" in text
        section = critical_path_section(report)
        assert "most slack" in section

    def test_to_dict_round_trips_key_figures(self, profiled):
        _, report = profiled
        doc = report.to_dict()
        assert doc["n_firings"] == report.n_firings
        assert doc["reconciliation_error"] == pytest.approx(
            report.reconciliation_error
        )
        assert doc["path_length"] == len(report.path)
        assert doc["path_labels"] == [r.label for r in report.path]


class TestProcessProfile:
    def test_dispatched_run_reconciles_and_attributes(self):
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        result, report = _profiled_run(
            ProcessExecutor(2, cost_threshold=0.0),
            compiled,
            (),
            registry=reg,
        )
        assert result.value is not None
        assert report.reconciliation_error <= RECONCILIATION_TOLERANCE
        att = report.attribution
        # The additive decomposition is recorded...
        for key in ("operator_body", "engine_overhead", "master_wait"):
            assert att[key] >= 0.0
        # ...and the overlapping (non-additive) worker figures exist.
        assert "worker_body" in att and "ipc_latency" in att
        assert 0.0 <= report.master_overhead_fraction <= 1.0

    def test_worker_spans_join_master_enqueues(self):
        # Causality across the IPC boundary: a dispatched firing's parent
        # is the master-side firing that enqueued it.
        reg = fork_join_registry()
        compiled = compile_source(FORK_JOIN_SRC, registry=reg)
        _, report = _profiled_run(
            ProcessExecutor(2, cost_threshold=0.0),
            compiled,
            (),
            registry=reg,
        )
        workers = [r for r in report.path if r.processor >= 1]
        assert workers, "cost_threshold=0 must put worker spans on the path"
        # The chain survives the IPC boundary: dispatched firings carry
        # parent links back to a single parentless root.
        assert len(report.path) >= 2
        assert report.path[0].parent_seq is None
        for rec in report.path[1:]:
            assert rec.parent_seq is not None


class TestEmptyAndDegenerate:
    def test_no_events_yields_empty_report(self):
        report = critical_path([], wall_seconds=0.0)
        assert report.n_firings == 0
        assert report.path == []
        assert "0 firings" in report.describe()

    def test_critical_path_requires_recording(self):
        ctx = RunContext(flight_recorder=False)
        with pytest.raises(ValueError, match="record_events"):
            ctx.critical_path()


class TestComparison:
    @pytest.fixture(scope="class")
    def two_reports(self):
        compiled = compile_source(FIB_SRC)
        _, a = _profiled_run(SequentialExecutor(), compiled, (10,))
        _, b = _profiled_run(SequentialExecutor(), compiled, (10,))
        return a, b

    def test_compare_critical_paths_renders(self, two_reports):
        a, b = two_reports
        text = compare_critical_paths(a, b)
        assert "wall:" in text
        assert "critical path" in text

    def test_compare_runs_carries_the_diff(self, two_reports):
        # tools.compare_runs threads critpath reports through to the
        # rendered delta table.
        from repro.machine import SimulatedExecutor, uniform

        a, b = two_reports
        compiled = compile_source(FIB_SRC)
        base = SimulatedExecutor(uniform(2)).run(compiled.graph, args=(8,))
        cand = SimulatedExecutor(uniform(4)).run(compiled.graph, args=(8,))
        out = compare(
            base, cand, baseline_critpath=a, candidate_critpath=b
        )
        assert out.critical_path_diff
        assert out.critical_path_diff in out.describe()
