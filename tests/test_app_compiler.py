"""The parallel-compilation case study (section 6, Table 1)."""

import pytest

from repro.apps.compiler_app import (
    TABLE1_TARGETS,
    compile_parallel_compiler,
    generate_workload,
    run_table1,
    split_source_chunks,
)
from repro.lang import parse_program
from repro.runtime import SequentialExecutor


class TestWorkload:
    def test_workload_parses(self):
        source = generate_workload(n_functions=20)
        program = parse_program(source)
        assert len(program.functions) == 20

    def test_workload_is_deterministic(self):
        assert generate_workload(seed=5) == generate_workload(seed=5)
        assert generate_workload(seed=5) != generate_workload(seed=6)

    def test_workload_sizes_are_skewed(self):
        program = parse_program(generate_workload(n_functions=30))
        sizes = sorted((f.body.size() for f in program.functions), reverse=True)
        assert sizes[0] > 4 * sizes[len(sizes) // 2]


class TestChunking:
    def test_chunks_reassemble_to_source(self):
        source = generate_workload(n_functions=12)
        chunks = split_source_chunks(source)
        assert "".join(chunks) == source
        assert len(chunks) == 12

    def test_each_chunk_parses_alone(self):
        for chunk in split_source_chunks(generate_workload(n_functions=8)):
            parse_program(chunk)

    def test_unchunkable_source_is_one_chunk(self):
        assert split_source_chunks("   -- just a comment") == [
            "   -- just a comment"
        ]


class TestParallelCompilation:
    @pytest.fixture(scope="class")
    def run(self):
        source = generate_workload(n_functions=16, seed=7)
        compiled = compile_parallel_compiler(source)
        result = SequentialExecutor().run(
            compiled.graph, args=(source,), registry=compiled.registry
        )
        return source, result

    def test_produces_templates(self, run):
        _, result = run
        assert result.value["templates"] >= 16
        assert result.value["nodes"] > 100

    def test_deterministic(self, run):
        source, result = run
        compiled = compile_parallel_compiler(source)
        again = SequentialExecutor(seed=99).run(
            compiled.graph, args=(source,), registry=compiled.registry
        )
        assert again.value == result.value


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table1(n_functions=48, seed=1990)

    def test_lexing_is_sequential(self, table):
        assert table.parallel["Lexing"] == pytest.approx(
            table.sequential["Lexing"], rel=0.01
        )

    def test_sequential_column_matches_paper_calibration(self, table):
        # Calibration anchors each pass near Table 1's sequential numbers
        # (ticks = paper msec x 1000); splits/merges add a small epsilon.
        for name, target in TABLE1_TARGETS.items():
            assert table.sequential[name] == pytest.approx(target, rel=0.15)

    def test_per_pass_speedups_in_paper_range(self, table):
        speedups = table.per_pass_speedup()
        for name, s in speedups.items():
            if name == "Lexing":
                continue
            # Paper: "The speedup per pass ranges between two and three."
            assert 2.0 <= s <= 3.0, (name, s)

    def test_overall_speedup_near_paper(self, table):
        # Paper: roughly 2.2 with three processors.
        assert table.overall_speedup == pytest.approx(2.2, abs=0.35)

    def test_parallel_compile_output_identical(self, table):
        assert table.artifact["templates"] > 0  # asserted equal inside
