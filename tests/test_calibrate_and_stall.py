"""Measured-cost calibration and stall diagnostics."""

import time

import pytest

from repro import compile_source, default_registry
from repro.errors import RuntimeFailure
from repro.graph.ir import GraphProgram, Node, NodeKind, Port, Template
from repro.machine import SimulatedExecutor, measure_costs, uniform
from repro.runtime import SequentialExecutor


class TestCalibration:
    @staticmethod
    def _program():
        reg = default_registry()

        @reg.register(name="slow")
        def slow(x):
            time.sleep(0.003)
            return x + 1

        @reg.register(name="fast")
        def fast(x):
            return x * 2

        compiled = compile_source(
            """
            main(n)
              let a = slow(n)
                  b = slow(incr(n))
                  c = fast(n)
              in add(add(a, b), c)
            """,
            registry=reg,
        )
        return compiled, reg

    def test_measures_all_operators(self):
        compiled, reg = self._program()
        report = measure_costs(compiled.graph, reg, args=(1,))
        assert {"slow", "fast", "incr", "add"} <= set(report.costs)
        assert report.calls["slow"] == 2
        assert report.wall_seconds > 0

    def test_relative_costs_reflect_reality(self):
        compiled, reg = self._program()
        report = measure_costs(compiled.graph, reg, args=(1,))
        assert report.costs["slow"] > 10 * report.costs["fast"]

    def test_dominant_ranking(self):
        compiled, reg = self._program()
        report = measure_costs(compiled.graph, reg, args=(1,))
        assert report.dominant(1)[0][0] == "slow"

    def test_feeds_the_simulator(self):
        compiled, reg = self._program()
        report = measure_costs(compiled.graph, reg, args=(1,))
        result = SimulatedExecutor(
            uniform(2), op_cost_overrides=report.costs
        ).run(compiled.graph, args=(1,), registry=reg)
        # The two slow calls are independent: with measured costs and two
        # processors they overlap, so the makespan is well under the sum.
        total = sum(
            report.costs[label] * count
            for label, count in report.calls.items()
        )
        assert result.ticks < 0.8 * total

    def test_min_ticks_floor(self):
        compiled, reg = self._program()
        report = measure_costs(
            compiled.graph, reg, args=(1,), ticks_per_second=1e-9
        )
        assert all(v >= 1.0 for v in report.costs.values())


class TestStallDiagnostics:
    @staticmethod
    def _stuck_program() -> GraphProgram:
        """A hand-built ill-formed graph: a node awaits an input no one
        produces (its source port belongs to a node that never fires
        because of a manufactured cross-dependency)."""
        t = Template(name="main")
        # node 0 and 1 wait on each other -> neither ever fires.
        t.nodes.append(Node(kind=NodeKind.OP, name="incr", inputs=[Port(1)]))
        t.nodes.append(Node(kind=NodeKind.OP, name="incr", inputs=[Port(0)]))
        t.result = Port(0, 0)
        t.finalize()
        g = GraphProgram()
        g.add(t)
        return g

    def test_stall_raises_with_report(self):
        graph = self._stuck_program()
        with pytest.raises(RuntimeFailure) as excinfo:
            SequentialExecutor().run(graph)
        message = str(excinfo.value)
        assert "stalled" in message
        assert "live activation" in message
        assert "awaits" in message

    def test_validator_would_have_caught_it(self):
        from repro.errors import GraphError
        from repro.graph.validate import validate_program

        with pytest.raises(GraphError, match="cycle"):
            validate_program(self._stuck_program())

    def test_stall_report_limits_output(self):
        from repro.runtime.engine import ExecutionState
        from repro.runtime import default_registry

        state = ExecutionState(self._stuck_program(), default_registry())
        state.start(())
        report = state.stall_report(limit=0)
        assert "live activation" in report
