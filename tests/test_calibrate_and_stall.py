"""Measured-cost calibration and stall diagnostics."""

import time

import pytest

from repro import compile_source, default_registry
from repro.errors import RuntimeFailure
from repro.graph.ir import GraphProgram, Node, NodeKind, Port, Template
from repro.machine import SimulatedExecutor, measure_costs, uniform
from repro.runtime import SequentialExecutor


class TestCalibration:
    @staticmethod
    def _program():
        reg = default_registry()

        @reg.register(name="slow")
        def slow(x):
            time.sleep(0.003)
            return x + 1

        @reg.register(name="fast")
        def fast(x):
            return x * 2

        compiled = compile_source(
            """
            main(n)
              let a = slow(n)
                  b = slow(incr(n))
                  c = fast(n)
              in add(add(a, b), c)
            """,
            registry=reg,
        )
        return compiled, reg

    def test_measures_all_operators(self):
        compiled, reg = self._program()
        report = measure_costs(compiled.graph, reg, args=(1,))
        assert {"slow", "fast", "incr", "add"} <= set(report.costs)
        assert report.calls["slow"] == 2
        assert report.wall_seconds > 0

    def test_relative_costs_reflect_reality(self):
        compiled, reg = self._program()
        report = measure_costs(compiled.graph, reg, args=(1,))
        assert report.costs["slow"] > 10 * report.costs["fast"]

    def test_dominant_ranking(self):
        compiled, reg = self._program()
        report = measure_costs(compiled.graph, reg, args=(1,))
        assert report.dominant(1)[0][0] == "slow"

    def test_feeds_the_simulator(self):
        compiled, reg = self._program()
        report = measure_costs(compiled.graph, reg, args=(1,))
        result = SimulatedExecutor(
            uniform(2), op_cost_overrides=report.costs
        ).run(compiled.graph, args=(1,), registry=reg)
        # The two slow calls are independent: with measured costs and two
        # processors they overlap, so the makespan is well under the sum.
        total = sum(
            report.costs[label] * count
            for label, count in report.calls.items()
        )
        assert result.ticks < 0.8 * total

    def test_min_ticks_floor(self):
        compiled, reg = self._program()
        report = measure_costs(
            compiled.graph, reg, args=(1,), ticks_per_second=1e-9
        )
        assert all(v >= 1.0 for v in report.costs.values())


class TestCalibrationPersistence:
    """``calibrate_dispatch`` measurements persist to disk, keyed by
    registry + operator population + machine; ``--recalibrate`` (the
    ``force`` flag) re-measures on demand."""

    @pytest.fixture()
    def cache_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("DELIRIUM_CACHE_DIR", str(tmp_path))
        return tmp_path

    def test_save_load_round_trip(self, cache_env):
        from repro.machine import (
            load_dispatch_calibration,
            save_dispatch_calibration,
        )
        from repro.machine.calibrate import calibrate_dispatch

        compiled, reg = TestCalibration._program()
        assert load_dispatch_calibration(compiled.graph, reg) is None
        calibration = calibrate_dispatch(compiled.graph, reg, args=(1,))
        path = save_dispatch_calibration(calibration, compiled.graph, reg)
        assert path.startswith(str(cache_env))
        loaded = load_dispatch_calibration(compiled.graph, reg)
        assert loaded is not None
        assert loaded.seconds_by_operator == calibration.seconds_by_operator
        assert loaded.dispatch == calibration.dispatch
        assert loaded.keep_local == calibration.keep_local

    def test_cached_wrapper_skips_remeasure(self, cache_env):
        from repro.machine import calibrate_dispatch_cached

        compiled, reg = TestCalibration._program()
        first = calibrate_dispatch_cached(compiled.graph, reg, args=(1,))
        # Poison the stored table so a true re-measure would differ; a
        # cache hit must serve the stored numbers verbatim.
        import json

        from repro.machine.calibrate import calibration_path

        path = calibration_path(compiled.graph, reg)
        payload = json.loads(open(path).read())
        payload["seconds_by_operator"]["slow"] = 123.0
        open(path, "w").write(json.dumps(payload))
        second = calibrate_dispatch_cached(compiled.graph, reg, args=(1,))
        assert second.seconds_by_operator["slow"] == 123.0
        assert first.seconds_by_operator["slow"] != 123.0
        forced = calibrate_dispatch_cached(
            compiled.graph, reg, args=(1,), force=True
        )
        assert forced.seconds_by_operator["slow"] != 123.0

    def test_threshold_split_recomputed_on_load(self, cache_env):
        from repro.machine import (
            load_dispatch_calibration,
            save_dispatch_calibration,
        )
        from repro.machine.calibrate import calibrate_dispatch

        compiled, reg = TestCalibration._program()
        calibration = calibrate_dispatch(compiled.graph, reg, args=(1,))
        save_dispatch_calibration(calibration, compiled.graph, reg)
        # slow sleeps ~3 ms per fire: above a 1 ms bar, below a 1 s bar.
        low = load_dispatch_calibration(
            compiled.graph, reg, min_dispatch_seconds=0.001
        )
        high = load_dispatch_calibration(
            compiled.graph, reg, min_dispatch_seconds=1.0
        )
        assert "slow" in low.dispatch
        assert high.dispatch == []
        assert "slow" in high.keep_local

    def test_key_covers_registry_and_machine(self, cache_env):
        from repro.machine.calibrate import (
            _calibration_key,
            machine_fingerprint,
        )

        compiled, reg = TestCalibration._program()
        other = default_registry()
        assert _calibration_key(compiled.graph, reg) != _calibration_key(
            compiled.graph, other
        )
        assert machine_fingerprint()  # non-empty, stable
        assert machine_fingerprint() == machine_fingerprint()

    def test_corrupt_table_is_a_miss(self, cache_env):
        from repro.machine import load_dispatch_calibration
        from repro.machine.calibrate import calibration_path

        compiled, reg = TestCalibration._program()
        path = calibration_path(compiled.graph, reg)
        import os

        os.makedirs(os.path.dirname(path), exist_ok=True)
        open(path, "w").write("{truncated")
        assert load_dispatch_calibration(compiled.graph, reg) is None


class TestStallDiagnostics:
    @staticmethod
    def _stuck_program() -> GraphProgram:
        """A hand-built ill-formed graph: a node awaits an input no one
        produces (its source port belongs to a node that never fires
        because of a manufactured cross-dependency)."""
        t = Template(name="main")
        # node 0 and 1 wait on each other -> neither ever fires.
        t.nodes.append(Node(kind=NodeKind.OP, name="incr", inputs=[Port(1)]))
        t.nodes.append(Node(kind=NodeKind.OP, name="incr", inputs=[Port(0)]))
        t.result = Port(0, 0)
        t.finalize()
        g = GraphProgram()
        g.add(t)
        return g

    def test_stall_raises_with_report(self):
        graph = self._stuck_program()
        with pytest.raises(RuntimeFailure) as excinfo:
            SequentialExecutor().run(graph)
        message = str(excinfo.value)
        assert "stalled" in message
        assert "live activation" in message
        assert "awaits" in message

    def test_validator_would_have_caught_it(self):
        from repro.errors import GraphError
        from repro.graph.validate import validate_program

        with pytest.raises(GraphError, match="cycle"):
            validate_program(self._stuck_program())

    def test_stall_report_limits_output(self):
        from repro.runtime.engine import ExecutionState
        from repro.runtime import default_registry

        state = ExecutionState(self._stuck_program(), default_registry())
        state.start(())
        report = state.stall_report(limit=0)
        assert "live activation" in report
