"""Operator registry and builtin operators."""

import pytest

from repro.errors import DeliriumError, UnknownOperatorError
from repro.runtime import (
    NULL,
    OperatorRegistry,
    OperatorSpec,
    builtin_registry,
    default_registry,
)


class TestRegistry:
    def test_register_decorator(self):
        reg = OperatorRegistry()

        @reg.register(modifies=(0,), cost=5.0)
        def poke(x):
            x.append(1)
            return x

        spec = reg.get("poke")
        assert spec.modifies == frozenset({0})
        assert spec.cost_ticks(([1],)) == 5.0

    def test_register_with_explicit_name(self):
        reg = OperatorRegistry()
        reg.register(name="other")(lambda x: x)
        assert "other" in reg

    def test_duplicate_registration_rejected(self):
        reg = OperatorRegistry()
        reg.register(name="f")(lambda: 1)
        with pytest.raises(DeliriumError):
            reg.register(name="f")(lambda: 2)

    def test_unknown_operator_error(self):
        with pytest.raises(UnknownOperatorError):
            OperatorRegistry().get("ghost")

    def test_callable_cost(self):
        spec = OperatorSpec(name="s", fn=lambda a: a, cost=lambda a: len(a) * 2.0)
        assert spec.cost_ticks(("abc",)) == 6.0

    def test_no_cost_hint(self):
        spec = OperatorSpec(name="s", fn=lambda: 0)
        assert spec.cost_ticks(()) is None

    def test_merged_with(self):
        a = OperatorRegistry()
        a.register(name="x", pure=True)(lambda: 1)
        b = OperatorRegistry()
        b.register(name="y")(lambda: 2)
        merged = a.merged_with(b)
        assert merged.names() == {"x", "y"}
        assert merged.pure_names() == {"x"}

    def test_merged_with_other_wins(self):
        a = OperatorRegistry()
        a.register(name="x")(lambda: 1)
        b = OperatorRegistry()
        b.register(name="x")(lambda: 2)
        assert a.merged_with(b).get("x").fn() == 2

    def test_iteration_order_is_insertion(self):
        reg = OperatorRegistry()
        for name in ("c", "a", "b"):
            reg.register(name=name)(lambda: 0)
        assert [s.name for s in reg] == ["c", "a", "b"]


class TestBuiltins:
    @pytest.mark.parametrize(
        "name,args,expected",
        [
            ("incr", (4,), 5),
            ("decr", (4,), 3),
            ("add", (2, 3), 5),
            ("sub", (2, 3), -1),
            ("mul", (2, 3), 6),
            ("div", (7, 2), 3.5),
            ("idiv", (7, 2), 3),
            ("mod", (7, 2), 1),
            ("neg", (3,), -3),
            ("min2", (2, 3), 2),
            ("max2", (2, 3), 3),
            ("is_equal", (2, 2), 1),
            ("is_equal", (2, 3), 0),
            ("is_not_equal", (2, 3), 1),
            ("is_less", (2, 3), 1),
            ("is_less_equal", (3, 3), 1),
            ("is_greater", (3, 2), 1),
            ("is_greater_equal", (2, 3), 0),
            ("not", (0,), 1),
            ("and", (1, 0), 0),
            ("or", (0, 2), 1),
            ("identity", ("x",), "x"),
        ],
    )
    def test_builtin(self, name, args, expected):
        assert builtin_registry().get(name).fn(*args) == expected

    def test_is_null(self):
        fn = builtin_registry().get("is_null").fn
        assert fn(NULL) == 1
        assert fn(0) == 0

    def test_merge_drops_nulls_and_flattens_lists(self):
        fn = builtin_registry().get("merge").fn
        assert fn(NULL, 1, [2, 3], NULL, 4) == [1, 2, 3, 4]

    def test_builtins_are_pure(self):
        reg = builtin_registry()
        assert "incr" in reg.pure_names()
        assert "merge" in reg.pure_names()

    def test_default_registry_is_extensible_copy(self):
        reg = default_registry()
        reg.register(name="custom")(lambda: 1)
        assert "custom" not in builtin_registry()
        assert "custom" in reg

    def test_arities_recorded(self):
        assert builtin_registry().get("add").arity == 2
        assert builtin_registry().get("merge").arity is None
