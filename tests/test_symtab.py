"""Environment analysis: scoping, single assignment, arity, free vars."""

import pytest

from repro.compiler import analyze
from repro.errors import ArityError, SingleAssignmentError, UnboundNameError
from repro.lang import parse_program

OPS = {"f", "g", "incr", "add"}


def run(source: str, strict: bool = True, ops=OPS):
    return analyze(parse_program(source), known_operators=ops, strict=strict)


class TestSingleAssignment:
    def test_rebinding_in_same_let_is_error(self):
        with pytest.raises(SingleAssignmentError):
            run("main() let x = f() x = g() in x")

    def test_rebinding_in_nested_let_is_error(self):
        with pytest.raises(SingleAssignmentError):
            run("main() let x = f() in let x = g() in x")

    def test_param_shadowing_is_error(self):
        with pytest.raises(SingleAssignmentError):
            run("main(x) let x = f() in x")

    def test_tuple_binding_duplicate_name_is_error(self):
        with pytest.raises(SingleAssignmentError):
            run("main() let <a, a> = f() in a")

    def test_duplicate_function_definition_is_error(self):
        with pytest.raises(SingleAssignmentError):
            run("main() 1\nmain() 2")

    def test_local_function_shadowing_binding_is_error(self):
        with pytest.raises(SingleAssignmentError):
            run("main() let h = f() h(x) g(x) in h")

    def test_distinct_scopes_may_reuse_names(self):
        # Sibling functions can both use `x`; no scope sees both.
        info = run("main() add(p(1), q(2))\np(x) incr(x)\nq(x) incr(x)")
        assert set(info.functions) == {"main", "p", "q"}


class TestUnboundNames:
    def test_unbound_variable_strict(self):
        with pytest.raises(UnboundNameError):
            run("main() let x = f() in y")

    def test_unknown_operator_strict(self):
        with pytest.raises(UnboundNameError):
            run("main() mystery_op(1)")

    def test_unknown_name_lenient_is_assumed_operator(self):
        info = run("main() mystery_op(1)", strict=False)
        assert "mystery_op" in info.functions["main"].op_calls

    def test_no_registry_means_lenient(self):
        info = analyze(parse_program("main() whatever(1)"))
        assert "whatever" in info.functions["main"].op_calls


class TestArity:
    def test_function_arity_checked(self):
        with pytest.raises(ArityError):
            run("main() helper(1, 2)\nhelper(x) incr(x)")

    def test_local_function_arity_checked(self):
        with pytest.raises(ArityError):
            run("main() let h(x) incr(x) in h(1, 2)")

    def test_correct_arity_passes(self):
        run("main() helper(1)\nhelper(x) incr(x)")


class TestFreeVariablesAndCalls:
    def test_local_function_captures(self):
        info = run(
            "main(n) let h(x) add(x, n) in h(1)"
        )
        assert info.functions["main.h"].free == ["n"]

    def test_captures_propagate_through_nesting(self):
        info = run(
            """
            main(n)
              let outer(a)
                    let inner(b) add(add(a, b), n)
                    in inner(a)
              in outer(1)
            """
        )
        assert info.functions["main.outer.inner"].free == ["a", "n"]
        # n is free in outer too (via inner).
        assert "n" in info.functions["main.outer"].free

    def test_call_graph_records_function_calls(self):
        info = run("main() helper(1)\nhelper(x) incr(x)")
        assert info.functions["main"].calls == {"helper"}
        assert info.functions["helper"].op_calls == {"incr"}

    def test_dynamic_calls_flagged(self):
        info = run("main(fn) fn(1)")
        assert info.functions["main"].has_dynamic_calls

    def test_operator_passed_as_value_is_resolved(self):
        info = run("main() apply_it(incr)\napply_it(fn) fn(1)")
        assert not info.functions["main"].has_dynamic_calls

    def test_body_size_recorded(self):
        info = run("main() add(1, 2)")
        # Apply + Var(add) + two literals
        assert info.functions["main"].body_size == 4


class TestIterateScoping:
    def test_loop_vars_visible_in_cond_update_result(self):
        run(
            """
            main(n)
              iterate { i = 0, incr(i)  acc = 0, add(acc, i) }
              while add(i, n), result acc
            """,
            ops={"incr", "add"},
        )

    def test_loop_var_not_visible_in_init(self):
        with pytest.raises(UnboundNameError):
            run(
                "main() iterate { i = incr(i), incr(i) } while i, result i",
                ops={"incr"},
            )

    def test_loop_var_conflicts_with_outer_binding(self):
        with pytest.raises(SingleAssignmentError):
            run(
                "main(i) iterate { i = 0, incr(i) } while i, result i",
                ops={"incr"},
            )
