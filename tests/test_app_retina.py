"""The retina case study (section 5): model, programs, figure/dump shapes."""

import numpy as np
import pytest

from repro.apps.retina import (
    RetinaConfig,
    compile_retina,
    make_registry,
    run_sequential,
)
from repro.apps.retina import model
from repro.machine import SimulatedExecutor, cray_2, cray_ymp, speedup_curve
from repro.runtime import SequentialExecutor
from repro.tools import load_balance_summary

SMALL = RetinaConfig(height=32, width=32, num_iter=2)


class TestModel:
    def test_initial_state_is_seeded(self):
        a = model.initial_state(SMALL)
        b = model.initial_state(SMALL)
        assert np.array_equal(a.targets, b.targets)

    def test_band_rows_cover_frame(self):
        rows = [SMALL.band_rows(b) for b in range(SMALL.n_bands)]
        assert rows[0][0] == 0
        assert rows[-1][1] == SMALL.height
        for (_, r1), (r0, _) in zip(rows, rows[1:]):
            assert r1 == r0

    def test_band_convolution_equals_full_frame(self):
        state = model.initial_state(SMALL)
        chunks = model.split_targets(state, SMALL)
        for c in chunks:
            model.advance_targets(c, SMALL)
        state = model.combine_chunks(chunks, SMALL)
        kernel = model.slab_kernels(SMALL)[0]
        full = model.convolve_frame(state.frame, kernel)
        bands = model.split_bands(state, SMALL)
        for band in bands:
            model.convolve_band(band, kernel)
        assembled = model.assemble_frame(bands, SMALL)
        assert np.array_equal(assembled, full)

    def test_separable_kernels_match_dense(self):
        from scipy.signal import convolve2d

        rng = np.random.default_rng(7)
        x = rng.standard_normal((32, 32))
        for kernel in model.slab_kernels(SMALL)[:4]:
            dense = convolve2d(
                x, kernel.dense(), mode="same", boundary="fill"
            )
            sep = model.convolve_frame(x, kernel)
            assert np.allclose(sep, dense, atol=1e-12)

    def test_targets_stay_in_bounds(self):
        state = model.initial_state(SMALL)
        chunks = model.split_targets(state, SMALL)
        for _ in range(50):
            for c in chunks:
                model.advance_targets(c, SMALL)
        for c in chunks:
            assert (c.targets[:, 0] >= 0).all()
            assert (c.targets[:, 0] <= SMALL.width).all()
            assert (c.targets[:, 1] >= 0).all()
            assert (c.targets[:, 1] <= SMALL.height).all()

    def test_update_slabs_are_odd(self):
        assert not model.is_update_slab(0)
        assert model.is_update_slab(1)
        assert not model.is_update_slab(2)
        assert model.is_update_slab(3)

    def test_split_targets_partitions_all(self):
        state = model.initial_state(SMALL)
        chunks = model.split_targets(state, SMALL)
        total = sum(len(c.targets) for c in chunks)
        assert total == SMALL.n_targets


class TestEquivalence:
    """v1, v2, and the sequential oracle must agree bit-for-bit."""

    @pytest.fixture(scope="class")
    def oracle(self):
        return run_sequential(SMALL).signature()

    @pytest.mark.parametrize("version", [1, 2])
    def test_version_matches_oracle(self, version, oracle):
        compiled = compile_retina(version, SMALL)
        result = SequentialExecutor().run(
            compiled.graph, registry=compiled.registry
        )
        assert result.value.signature() == oracle

    def test_v2_deterministic_across_schedules(self, oracle):
        compiled = compile_retina(2, SMALL)
        for seed in (3, 4):
            result = SequentialExecutor(seed=seed).run(
                compiled.graph, registry=compiled.registry
            )
            assert result.value.signature() == oracle

    def test_simulated_machines_same_result(self, oracle):
        compiled = compile_retina(2, SMALL)
        for p in (1, 4):
            sim = SimulatedExecutor(cray_ymp(p)).run(
                compiled.graph, registry=compiled.registry
            )
            assert sim.value.signature() == oracle

    def test_purity_checker_clean(self, oracle):
        compiled = compile_retina(2, SMALL)
        result = SequentialExecutor(check_purity=True).run(
            compiled.graph, registry=compiled.registry
        )
        assert result.value.signature() == oracle

    def test_energy_history_length(self):
        state = run_sequential(SMALL)
        # one energy measurement per odd slab per iteration
        odd_slabs = sum(
            1 for s in range(SMALL.start_slab, SMALL.final_slab)
            if model.is_update_slab(s)
        )
        assert len(state.energy_history) == odd_slabs * SMALL.num_iter


class TestFigure1Shape:
    """Speedups: ~1, ~2, ~2 (plateau), >3 on four processors; v1 <= ~2."""

    @pytest.fixture(scope="class")
    def curve(self):
        compiled = compile_retina(2)
        return speedup_curve(
            compiled.graph,
            cray_ymp(),
            [1, 2, 3, 4],
            registry=compiled.registry,
        )

    def test_two_processors_near_double(self, curve):
        assert curve[2] == pytest.approx(1.95, abs=0.15)

    def test_three_processor_plateau(self, curve):
        assert curve[3] == pytest.approx(curve[2], abs=0.25)

    def test_four_processors_above_three(self, curve):
        assert 3.0 < curve[4] < 4.0

    def test_v1_capped_near_two(self):
        compiled = compile_retina(1)
        curve = speedup_curve(
            compiled.graph, cray_ymp(), [1, 4], registry=compiled.registry
        )
        assert curve[4] == pytest.approx(2.0, abs=0.25)


class TestSection52Dumps:
    def test_v1_bottleneck_is_post_up(self):
        compiled = compile_retina(1)
        result = SimulatedExecutor(cray_2(4), trace=True).run(
            compiled.graph, registry=compiled.registry
        )
        assert result.tracer is not None
        summary = load_balance_summary(
            result.tracer, include={"convol_bite", "post_up"}
        )
        assert summary.bottleneck == "post_up"
        # post_up's expensive half costs about as much as all four
        # convolutions combined (paper: 4,070,365 vs ~1.06M each).
        assert 3.0 < summary.imbalance_ratio < 5.0

    def test_v2_is_balanced(self):
        compiled = compile_retina(2)
        result = SimulatedExecutor(cray_2(4), trace=True).run(
            compiled.graph, registry=compiled.registry
        )
        assert result.tracer is not None
        summary = load_balance_summary(
            result.tracer, include={"convol_bite", "update_bite", "done_up"}
        )
        # max single node ~1.2M vs ~1M means: no node serializes the slab.
        assert summary.imbalance_ratio < 2.0

    def test_overhead_below_one_percent(self):
        # Section 7: "less than one percent ... of the retina model".
        compiled = compile_retina(2)
        result = SimulatedExecutor(cray_ymp(4)).run(
            compiled.graph, registry=compiled.registry
        )
        assert result.overhead_fraction() < 0.01


class TestRegistryShape:
    def test_all_paper_operators_present(self):
        reg = make_registry(SMALL)
        for name in (
            "set_up", "target_split", "target_bite", "pre_update",
            "convol_split", "convol_bite", "post_up",
            "update_split", "update_bite", "done_up",
        ):
            assert name in reg

    def test_bites_declare_modification(self):
        reg = make_registry(SMALL)
        for name in ("target_bite", "convol_bite", "update_bite"):
            assert 0 in reg.get(name).modifies
