"""The before/after run-comparison tool."""

import pytest

from repro import compile_source
from repro.apps.retina import RetinaConfig, compile_retina
from repro.machine import SimulatedExecutor, cray_2, uniform
from repro.tools import compare


def _runs(trace=True):
    compiled = compile_source(
        "main(n) add(work_a(n), work_b(n))",
        registry=_registry(),
    )
    slow = SimulatedExecutor(uniform(1), trace=trace).run(
        compiled.graph, args=(1,), registry=compiled.registry
    )
    fast = SimulatedExecutor(uniform(2), trace=trace).run(
        compiled.graph, args=(1,), registry=compiled.registry
    )
    return slow, fast


def _registry():
    from repro.runtime import default_registry

    reg = default_registry()
    reg.register(name="work_a", pure=True, cost=1000.0)(lambda n: n + 1)
    reg.register(name="work_b", pure=True, cost=1000.0)(lambda n: n + 2)
    return reg


class TestCompare:
    def test_speedup_computed(self):
        slow, fast = _runs()
        report = compare(slow, fast)
        assert report.speedup == pytest.approx(2.0, rel=0.1)

    def test_per_operator_totals(self):
        slow, fast = _runs()
        report = compare(slow, fast)
        assert report.per_operator["work_a"][0] == pytest.approx(1000.0)
        assert report.per_operator["work_a"][1] == pytest.approx(1000.0)

    def test_describe_renders(self):
        slow, fast = _runs()
        text = compare(slow, fast).describe()
        assert "speedup" in text
        assert "work_a" in text

    def test_without_traces(self):
        slow, fast = _runs(trace=False)
        report = compare(slow, fast)
        assert report.per_operator == {}
        assert report.speedup > 1.5

    def test_different_values_rejected(self):
        compiled_a = compile_source("main() 1")
        compiled_b = compile_source("main() 2")
        a = SimulatedExecutor(uniform(1)).run(compiled_a.graph)
        b = SimulatedExecutor(uniform(1)).run(compiled_b.graph)
        with pytest.raises(ValueError):
            compare(a, b)

    def test_regressions_listed(self):
        slow, fast = _runs()
        # Symmetric runs: swapping roles makes nothing a regression in
        # one direction but per-operator times are equal, so none listed.
        assert compare(slow, fast).regressions() == []

    def test_retina_v1_vs_v2_story(self):
        config = RetinaConfig(num_iter=1)
        v1 = compile_retina(1, config)
        v2 = compile_retina(2, config)
        r1 = SimulatedExecutor(cray_2(4), trace=True).run(
            v1.graph, registry=v1.registry
        )
        r2 = SimulatedExecutor(cray_2(4), trace=True).run(
            v2.graph, registry=v2.registry
        )

        class _Sig:
            def __init__(self, run):
                self.value = run.value.signature()
                self.ticks = run.ticks
                self.tracer = run.tracer
                self.traffic = run.traffic
                self.stats = run.stats

        report = compare(_Sig(r1), _Sig(r2))
        assert report.speedup > 1.4  # the section 5.2 tuning win
        before, after = report.per_operator["post_up"]
        assert before > 0 and after == 0  # post_up replaced by update_bite
