"""The Gantt timeline tool and copy attribution."""

from repro.apps.retina import RetinaConfig, compile_retina
from repro.machine import SimulatedExecutor, cray_2
from repro.runtime.tracing import Tracer
from repro.tools import gantt, utilization_per_processor


def synthetic_trace() -> Tracer:
    t = Tracer()
    t.record("alpha", "op", 50, start=0, processor=0)
    t.record("beta", "op", 100, start=0, processor=1)
    t.record("alpha", "op", 50, start=50, processor=0)
    return t


class TestGantt:
    def test_rows_per_processor(self):
        art = gantt(synthetic_trace(), n_processors=2, width=20)
        lines = art.splitlines()
        assert lines[0].startswith("P0 |")
        assert lines[1].startswith("P1 |")

    def test_legend_present(self):
        art = gantt(synthetic_trace(), n_processors=2, width=20)
        assert "legend:" in art
        assert "alpha" in art and "beta" in art

    def test_busy_processor_fills_row(self):
        art = gantt(synthetic_trace(), n_processors=2, width=20)
        p1 = art.splitlines()[1]
        body = p1[p1.index("|") + 1 : p1.rindex("|")]
        assert "." not in body  # beta spans the whole makespan

    def test_empty_trace(self):
        assert gantt(Tracer(), 2) == "(empty trace)"

    def test_retina_v1_timeline_shows_idle_processors(self):
        # The visual version of the section 5.2 story: during post_up's
        # expensive half, three of four processors are idle.
        compiled = compile_retina(1, RetinaConfig(num_iter=1))
        result = SimulatedExecutor(cray_2(4), trace=True).run(
            compiled.graph, registry=compiled.registry
        )
        assert result.tracer is not None
        art = gantt(result.tracer, 4, width=60)
        idle_chars = sum(line.count(".") for line in art.splitlines()[:4])
        assert idle_chars > 40  # substantial idle area

    def test_distinct_glyphs(self):
        t = Tracer()
        for i, label in enumerate(["aa", "ab", "ba"]):
            t.record(label, "op", 10, start=i * 10, processor=0)
        art = gantt(t, 1, width=30, min_fraction=0.0)
        row = art.splitlines()[0]
        body = row[row.index("|") + 1 : row.rindex("|")]
        assert len({c for c in body if c != "."}) == 3


class TestUtilization:
    def test_per_processor_fractions(self):
        u = utilization_per_processor(synthetic_trace(), 2)
        assert u[1] == 1.0
        assert u[0] == 1.0  # two 50-tick spans over a 100-tick makespan

    def test_empty(self):
        assert utilization_per_processor(Tracer(), 3) == [0.0, 0.0, 0.0]


class TestCopyAttribution:
    def test_copies_attributed_to_forcing_operator(self):
        from repro import compile_source, default_registry
        from repro.runtime import SequentialExecutor

        reg = default_registry()
        reg.register(name="mk")(lambda: [0] * 100)
        reg.register(name="wr", modifies=(0,))(
            lambda l, v: (l.__setitem__(0, v), l)[1]
        )
        reg.register(name="rd", pure=True)(lambda l: l[0])
        compiled = compile_source(
            """
            main()
              let b = mk()
                  x = wr(b, 1)
                  y = wr(b, 2)
                  z = wr(b, 3)
              in <rd(x), rd(y), rd(z)>
            """,
            registry=reg,
        )
        result = SequentialExecutor().run(compiled.graph, registry=reg)
        assert result.value == (1, 2, 3)
        stats = result.stats
        assert sum(stats.copies_by_operator.values()) == stats.cow_copies
        assert set(stats.copies_by_operator) == {"wr"}
        assert stats.copy_bytes_by_operator["wr"] > 0
