"""Unit tests for the Delirium parser, including the paper's listings."""

import pytest

from repro.errors import ParseError
from repro.lang import ast, parse_expression, parse_program


class TestPrimaries:
    def test_int(self):
        assert parse_expression("5") == ast.Literal(value=5)

    def test_float(self):
        assert parse_expression("2.5") == ast.Literal(value=2.5)

    def test_string(self):
        assert parse_expression('"hi"') == ast.Literal(value="hi")

    def test_null(self):
        assert isinstance(parse_expression("NULL"), ast.Null)

    def test_var(self):
        assert parse_expression("board") == ast.Var(name="board")

    def test_parenthesized(self):
        assert parse_expression("(x)") == ast.Var(name="x")

    def test_tuple_expression(self):
        e = parse_expression("<a, 1, f(b)>")
        assert isinstance(e, ast.TupleExpr)
        assert len(e.items) == 3


class TestApplication:
    def test_simple_call(self):
        e = parse_expression("f(a, b)")
        assert isinstance(e, ast.Apply)
        assert e.callee == ast.Var(name="f")
        assert len(e.args) == 2

    def test_nullary_call(self):
        e = parse_expression("init_fn()")
        assert isinstance(e, ast.Apply)
        assert e.args == []

    def test_nested_call(self):
        e = parse_expression("show(do_it(board, 1))")
        assert isinstance(e, ast.Apply)
        inner = e.args[0]
        assert isinstance(inner, ast.Apply)

    def test_curried_application(self):
        # First-class functions: the result of f(a) is applied to b.
        e = parse_expression("f(a)(b)")
        assert isinstance(e, ast.Apply)
        assert isinstance(e.callee, ast.Apply)

    def test_parenthesized_callee(self):
        e = parse_expression("(pick(f, g))(x)")
        assert isinstance(e, ast.Apply)
        assert isinstance(e.callee, ast.Apply)


class TestLet:
    def test_simple_binding(self):
        e = parse_expression("let x = f() in x")
        assert isinstance(e, ast.Let)
        assert isinstance(e.bindings[0], ast.SimpleBinding)
        assert e.bindings[0].name == "x"

    def test_multiple_bindings(self):
        e = parse_expression("let a = f() b = g(a) in add(a, b)")
        assert isinstance(e, ast.Let)
        assert [b.bound_names() for b in e.bindings] == [["a"], ["b"]]

    def test_tuple_binding(self):
        e = parse_expression("let <a, b, c, d> = split(s) in merge(a, b, c, d)")
        binding = e.bindings[0]
        assert isinstance(binding, ast.TupleBinding)
        assert binding.names == ["a", "b", "c", "d"]

    def test_local_function_binding(self):
        e = parse_expression("let square(x) mul(x, x) in square(4)")
        binding = e.bindings[0]
        assert isinstance(binding, ast.FunBinding)
        assert binding.func.name == "square"
        assert binding.func.params == ["x"]

    def test_unterminated_let(self):
        with pytest.raises(ParseError):
            parse_expression("let x = 1")


class TestIf:
    def test_if_then_else(self):
        e = parse_expression("if is_valid(b) then b else NULL")
        assert isinstance(e, ast.If)
        assert isinstance(e.orelse, ast.Null)

    def test_nested_if(self):
        e = parse_expression(
            "if a then if b then 1 else 2 else 3"
        )
        assert isinstance(e.then, ast.If)

    def test_missing_else_is_error(self):
        with pytest.raises(ParseError):
            parse_expression("if a then 1")


class TestIterate:
    def test_single_loopvar(self):
        e = parse_expression(
            "iterate { i = 0, incr(i) } while is_less(i, 10), result i"
        )
        assert isinstance(e, ast.Iterate)
        assert len(e.loopvars) == 1
        assert e.loopvars[0].name == "i"

    def test_multiple_loopvars(self):
        e = parse_expression(
            """
            iterate
            {
              i = 1, incr(i)
              acc = 1, mul(acc, i)
            }
            while is_less_equal(i, n),
            result acc
            """
        )
        assert [lv.name for lv in e.loopvars] == ["i", "acc"]

    def test_comma_before_result_is_optional(self):
        a = parse_expression(
            "iterate { i = 0, incr(i) } while c(i), result i"
        )
        b = parse_expression(
            "iterate { i = 0, incr(i) } while c(i) result i"
        )
        assert a == b

    def test_let_as_update_expression(self):
        # The retina main loop: the update of `scene` is a whole let.
        e = parse_expression(
            """
            iterate
            {
              t = 0, incr(t)
              scene = set_up(),
                let <a, b> = split(scene)
                    ao = bite(a)
                    bo = bite(b)
                in join(ao, bo)
            }
            while is_not_equal(t, 4),
            result scene
            """
        )
        assert isinstance(e.loopvars[1].update, ast.Let)

    def test_unterminated_iterate(self):
        with pytest.raises(ParseError):
            parse_expression("iterate { i = 0, incr(i) while c result i")


class TestProgram:
    def test_multiple_functions(self):
        p = parse_program("main() f(1)\nf(x) incr(x)")
        assert p.function_names() == ["main", "f"]
        assert p.function("f").params == ["x"]

    def test_missing_function_raises_keyerror(self):
        p = parse_program("main() 1")
        with pytest.raises(KeyError):
            p.function("nope")

    def test_empty_program_is_error(self):
        with pytest.raises(ParseError):
            parse_program("")

    def test_trailing_garbage_is_error(self):
        with pytest.raises(ParseError):
            parse_program("main() 1 )")


class TestPaperListings:
    def test_eight_queens_listing(self):
        p = parse_program(
            """
            main()
              let board = empty_board()
              in show_solutions(do_it(board,1))
            do_it(board,queen)
              let h1 = try(board,queen,1)
                  h2 = try(board,queen,2)
                  h3 = try(board,queen,3)
                  h4 = try(board,queen,4)
                  h5 = try(board,queen,5)
                  h6 = try(board,queen,6)
                  h7 = try(board,queen,7)
                  h8 = try(board,queen,8)
              in merge(h1,h2,h3,h4,h5,h6,h7,h8)
            try(board, queen, location)
              let new_board = add_queen(board,queen,location)
              in if is_valid(new_board)
                  then if is_equal(queen,8)
                        then new_board
                        else do_it(new_board,incr(queen))
                  else NULL
            """
        )
        assert p.function_names() == ["main", "do_it", "try"]
        assert len(p.function("do_it").body.bindings) == 8

    def test_retina_v1_listing(self):
        p = parse_program(
            """
            main()
              iterate
              {
                timestep=0,incr(timestep)
                scene=set_up(),
                  let
                    <a,b,c,d>=target_split(scene)
                    ao=target_bite(a)
                    bo=target_bite(b)
                    co=target_bite(c)
                    do=target_bite(d)
                  in do_convol(ao,bo,co,do)
             }
              while is_not_equal(timestep, 4),
              result scene
            do_convol(c1,c2,c3,c4)
              iterate
              {
                slab=0,incr(slab)
                convolve_data=pre_update(c1,c2,c3,c4),
                    let
                      <a,b,c,d>=convol_split(convolve_data)
                      ao=convol_bite(a,slab)
                      bo=convol_bite(b,slab)
                      co=convol_bite(c,slab)
                      do=convol_bite(d,slab)
                    in post_up(slab,ao,bo,co,do)
              } while is_not_equal(slab,4),
                result convolve_data
            """
        )
        assert p.function_names() == ["main", "do_convol"]
        main_body = p.function("main").body
        assert isinstance(main_body, ast.Iterate)
        assert [lv.name for lv in main_body.loopvars] == ["timestep", "scene"]

    def test_fork_join_listing(self):
        p = parse_program(
            """
            main()
              let
                 a_start=init_fn()
                 a=convolve(a_start,0)
                 b=convolve(a_start,1)
                 c=convolve(a_start,2)
                 d=convolve(a_start,3)
              in term_fn(a,b,c,d)
            """
        )
        body = p.function("main").body
        assert isinstance(body, ast.Let)
        assert len(body.bindings) == 5


class TestPositionsInErrors:
    def test_parse_error_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("main()\n  let = 3 in x")
        assert excinfo.value.line == 2
