"""Engine edge cases and failure injection.

The corners the main engine tests do not reach: dead call results,
operator failures mid-graph on every executor, closure pinning semantics,
zero-consumer values, activation recycling under adversarial shapes, and
reference-count hygiene after a run.
"""

import pytest

from repro import compile_source
from repro.errors import OperatorError
from repro.machine import SimulatedExecutor, uniform
from repro.runtime import (
    SequentialExecutor,
    ThreadedExecutor,
    default_registry,
)


class TestDeadCallsAndUnusedValues:
    def test_unused_call_result_does_not_corrupt_parent(self):
        # Without DCE, an unused function call still expands; its child
        # activation must not deliver into a recycled parent.
        compiled = compile_source(
            """
            main(n)
              let dead = slow_helper(n)
              in incr(n)
            slow_helper(x) mul(helper2(x), 2)
            helper2(x) add(x, 1)
            """,
            optimize_passes=(),
        )
        for _ in range(3):
            result = SequentialExecutor().run(compiled.graph, args=(5,))
            assert result.value == 6

    def test_unused_op_output_with_zero_consumers(self):
        reg = default_registry()
        sink = []
        reg.register(name="observe")(lambda x: sink.append(x) or x)
        compiled = compile_source(
            "main(n) let ignored = observe(n) in n",
            registry=reg,
            optimize_passes=(),  # impure: DCE keeps it anyway, but be sure
        )
        result = SequentialExecutor().run(compiled.graph, args=(3,), registry=reg)
        assert result.value == 3
        assert sink == [3]  # the effect happened exactly once

    def test_deeply_nested_dead_lets(self):
        src = "main(n) " + "let a$X = incr(n) in ".replace("$X", "0") + "n"
        nested = "main(n) "
        for i in range(30):
            nested += f"let d{i} = incr(n) in "
        nested += "n"
        compiled = compile_source(nested, optimize_passes=())
        assert SequentialExecutor().run(compiled.graph, args=(1,)).value == 1


class TestOperatorFailures:
    @staticmethod
    def _failing_registry():
        reg = default_registry()

        @reg.register(name="maybe_die")
        def maybe_die(x):
            if x == 3:
                raise RuntimeError("injected failure")
            return x

        return reg

    SRC = """
    main()
      let a = maybe_die(1)
          b = maybe_die(2)
          c = maybe_die(3)
          d = maybe_die(4)
      in add(add(a, b), add(c, d))
    """

    def test_sequential_raises(self):
        reg = self._failing_registry()
        compiled = compile_source(self.SRC, registry=reg)
        with pytest.raises(OperatorError) as excinfo:
            SequentialExecutor().run(compiled.graph, registry=reg)
        assert excinfo.value.operator == "maybe_die"

    def test_threaded_raises(self):
        reg = self._failing_registry()
        compiled = compile_source(self.SRC, registry=reg)
        with pytest.raises(OperatorError):
            ThreadedExecutor(4).run(compiled.graph, registry=reg)

    def test_simulated_raises(self):
        reg = self._failing_registry()
        compiled = compile_source(self.SRC, registry=reg)
        with pytest.raises(OperatorError):
            SimulatedExecutor(uniform(2)).run(compiled.graph, registry=reg)

    def test_failure_inside_recursion(self):
        reg = default_registry()

        @reg.register(name="guard")
        def guard(x):
            if x == 3:  # trips partway through the descent
                raise ValueError("too deep")
            return x

        compiled = compile_source(
            """
            main() down(0)
            down(i) if is_less(guard(i), 5) then down(incr(i)) else i
            """,
            registry=reg,
        )
        with pytest.raises(OperatorError):
            SequentialExecutor().run(compiled.graph, registry=reg)


class TestClosureSemantics:
    def test_captured_block_is_pinned_not_corrupted(self):
        # A closure captures a list; a destructive operator later writes
        # the same list through another path.  The pin forces a copy, so
        # the closure keeps seeing the original.
        reg = default_registry()
        reg.register(name="mk")(lambda: [100])
        reg.register(name="bump", modifies=(0,))(
            lambda l: (l.__setitem__(0, l[0] + 1), l)[1]
        )
        reg.register(name="head", pure=True)(lambda l: l[0])
        compiled = compile_source(
            """
            main()
              let data = mk()
                  reader() head(data)
                  bumped = bump(data)
              in <reader(), head(bumped)>
            """,
            registry=reg,
        )
        result = SequentialExecutor().run(compiled.graph, registry=reg)
        assert result.value == (100, 101)

    def test_closure_called_many_times(self):
        compiled = compile_source(
            """
            main(n)
              let addn(x) add(x, n)
              in add(addn(1), add(addn(2), addn(3)))
            """
        )
        assert compiled.run(args=(10,)).value == 36

    def test_closure_stored_and_retrieved_from_package(self):
        compiled = compile_source(
            """
            main(n)
              let f(x) mul(x, 2)
                  g(x) mul(x, 3)
                  <a, b> = <f, g>
              in add(a(n), b(n))
            """
        )
        assert compiled.run(args=(5,)).value == 25

    def test_self_recursive_closure_via_capture(self):
        compiled = compile_source(
            """
            main(n)
              let fact(k) if is_less_equal(k, 1)
                          then 1
                          else mul(k, fact(sub(k, 1)))
              in fact(n)
            """
        )
        assert compiled.run(args=(6,)).value == 720


class TestActivationRecycling:
    def test_recycled_activations_reset_cleanly(self):
        # A loop reusing activations must never leak values across
        # iterations: each iteration computes from fresh inputs.
        compiled = compile_source(
            """
            main(n)
              iterate {
                i = 0, incr(i)
                parity = 0, if is_equal(mod(i, 2), 0) then 1 else 0
              }
              while is_less(i, n),
              result parity
            """
        )
        # parity of (n-1) after n rounds: deterministic chain
        assert compiled.run(args=(5,)).value in (0, 1)
        a = compiled.run(args=(6,)).value
        b = compiled.run(args=(6,)).value
        assert a == b

    def test_interleaved_loops_do_not_share_state(self):
        compiled = compile_source(
            """
            main(n) <count(0, n), count(100, add(100, n))>
            count(i, stop) if is_less(i, stop) then count(incr(i), stop) else i
            """
        )
        assert compiled.run(args=(7,)).value == (7, 107)

    def test_reuse_counter_grows_with_iterations(self):
        compiled = compile_source(
            "main(n) iterate { i = 0, incr(i) } while is_less(i, n), result i"
        )
        small = compiled.run(args=(10,)).stats.activation_stats["reused"]
        large = compiled.run(args=(100,)).stats.activation_stats["reused"]
        assert large > small


class TestReferenceCountHygiene:
    def test_final_block_refcounts_are_consistent(self):
        # After a run, the final result holds exactly the result share.
        from repro.runtime.blocks import DataBlock
        from repro.runtime.engine import ExecutionState
        from repro.runtime.scheduler import ReadyQueue

        reg = default_registry()
        reg.register(name="mk")(lambda: [1, 2, 3])
        compiled = compile_source("main() mk()", registry=reg)
        state = ExecutionState(compiled.graph, reg)
        queue = ReadyQueue()
        queue.push_all(state.start(()))
        while queue:
            queue.push_all(state.fire(queue.pop()))
        final = state._final
        assert isinstance(final, DataBlock)
        assert final.rc == 1  # the result share and nothing else

    def test_null_heavy_program(self):
        compiled = compile_source(
            """
            main()
              let a = if 0 then 1 else NULL
                  b = if 1 then NULL else 2
              in merge(a, b, 7)
            """,
            optimize_passes=(),
        )
        assert compiled.run().value == [7]
