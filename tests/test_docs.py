"""Documentation accuracy: README snippets run; docs reference real files."""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _python_blocks(markdown: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", markdown, re.DOTALL)


class TestReadme:
    def test_quickstart_snippet_executes(self):
        readme = (ROOT / "README.md").read_text()
        blocks = _python_blocks(readme)
        assert blocks, "README lost its quickstart snippet"
        namespace: dict = {}
        exec(compile(blocks[0], "README.md", "exec"), namespace)  # noqa: S102

    def test_mentioned_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.findall(r"python (examples/\w+\.py)", readme):
            assert (ROOT / match).exists(), match

    def test_mentioned_docs_exist(self):
        readme = (ROOT / "README.md").read_text()
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert name in readme
            assert (ROOT / name).exists()
        for match in re.findall(r"docs/\w+\.md", readme):
            assert (ROOT / match).exists(), match


class TestExperimentsDoc:
    def test_every_mentioned_bench_exists(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        benches = set(re.findall(r"benchmarks/bench_\w+\.py", text))
        assert len(benches) >= 9
        for bench in benches:
            assert (ROOT / bench).exists(), bench

    def test_every_bench_file_is_documented(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert f"benchmarks/{bench.name}" in text, (
                f"{bench.name} missing from EXPERIMENTS.md"
            )


class TestPaperMap:
    def test_mentioned_modules_import(self):
        import importlib

        text = (ROOT / "docs" / "PAPER_MAP.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        assert len(modules) >= 10
        for dotted in sorted(modules):
            try:
                importlib.import_module(dotted)
            except ModuleNotFoundError:
                # A dotted *attribute* reference: import the parent and
                # resolve the trailing names against it.
                parts = dotted.split(".")
                for split in range(len(parts) - 1, 1, -1):
                    try:
                        obj = importlib.import_module(".".join(parts[:split]))
                    except ModuleNotFoundError:
                        continue
                    for attr in parts[split:]:
                        obj = getattr(obj, attr)
                    break
                else:
                    raise


class TestDesignDoc:
    def test_design_confirms_paper_identity(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "correct paper" in text

    def test_design_lists_all_benchmarks(self):
        text = (ROOT / "DESIGN.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in text, f"{bench.name} missing from DESIGN.md"


class TestTutorial:
    def test_tutorial_code_blocks_execute_in_order(self):
        text = (ROOT / "docs" / "TUTORIAL.md").read_text()
        blocks = _python_blocks(text)
        assert len(blocks) >= 4
        namespace: dict = {}
        for i, block in enumerate(blocks):
            exec(  # noqa: S102
                compile(block, f"TUTORIAL.md[block {i}]", "exec"), namespace
            )

    def test_tutorial_mentioned_in_nothing_stale(self):
        text = (ROOT / "docs" / "TUTORIAL.md").read_text()
        assert "examples/dynamic_parallelism.py" in text
        assert (ROOT / "examples" / "dynamic_parallelism.py").exists()
