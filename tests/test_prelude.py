"""The coordination-structure prelude (section 9.2 extension)."""

import pytest

from repro import compile_source, default_registry
from repro.errors import SingleAssignmentError
from repro.lang.prelude import PRELUDE_FUNCTIONS, PRELUDE_SOURCE
from repro.machine import SimulatedExecutor, uniform
from repro.runtime import SequentialExecutor


class TestPreludeBasics:
    def test_prelude_parses_standalone(self):
        from repro.lang import parse_program

        program = parse_program(PRELUDE_SOURCE + "\nmain() 1")
        for name in PRELUDE_FUNCTIONS:
            assert name in program.function_names()

    def test_prelude_off_by_default(self):
        from repro.errors import UnboundNameError

        with pytest.raises(UnboundNameError):
            compile_source("main() par_index_map(incr, 0, 3)")

    def test_name_collision_is_loud(self):
        with pytest.raises(SingleAssignmentError):
            compile_source(
                "main() 1\npar_reduce(a, b, c, d) 1", prelude=True
            )


class TestParIndexMap:
    def test_maps_range(self):
        compiled = compile_source(
            "main(n) par_index_map(incr, 0, n)", prelude=True
        )
        assert compiled.run(args=(5,)).value == [1, 2, 3, 4, 5]

    def test_empty_range(self):
        compiled = compile_source(
            "main() par_index_map(incr, 3, 3)", prelude=True
        )
        assert compiled.run().value == []

    def test_offset_range(self):
        compiled = compile_source(
            "main() par_index_map(incr, 10, 13)", prelude=True
        )
        assert compiled.run().value == [11, 12, 13]

    def test_with_local_closure(self):
        compiled = compile_source(
            """
            main(k)
              let scaled(i) mul(i, k)
              in par_index_map(scaled, 1, 5)
            """,
            prelude=True,
        )
        assert compiled.run(args=(10,)).value == [10, 20, 30, 40]

    def test_results_in_index_order_regardless_of_schedule(self):
        compiled = compile_source(
            "main(n) par_index_map(incr, 0, n)", prelude=True
        )
        for seed in (1, 2, 3):
            value = SequentialExecutor(seed=seed).run(
                compiled.graph, args=(8,)
            ).value
            assert value == [1, 2, 3, 4, 5, 6, 7, 8]


class TestParReduce:
    def test_sum_of_squares(self):
        reg = default_registry()
        reg.register(name="sq", pure=True, cost=50.0)(lambda i: i * i)
        compiled = compile_source(
            "main(n) par_reduce(add, sq, 0, n)", registry=reg, prelude=True
        )
        assert compiled.run(args=(10,)).value == 285

    def test_association_is_schedule_independent(self):
        # Balanced-tree association depends only on [lo, hi): float
        # results must be bit-identical under any schedule.
        reg = default_registry()
        items = [0.1 * (10 ** (i % 6)) for i in range(16)]
        reg.register(name="leaf", pure=True)(lambda i: items[i])
        compiled = compile_source(
            "main() par_reduce(add, leaf, 0, 16)", registry=reg, prelude=True
        )
        values = {
            SequentialExecutor(seed=s).run(
                compiled.graph, registry=reg
            ).value
            for s in range(6)
        }
        assert len(values) == 1

    def test_single_leaf(self):
        compiled = compile_source(
            "main() par_reduce(add, incr, 7, 8)", prelude=True
        )
        assert compiled.run().value == 8


class TestParSplit:
    def test_applies_to_each_piece(self):
        reg = default_registry()
        reg.register(name="mk", pure=True)(lambda: (1, 2, 3, 4))
        reg.register(name="dbl", pure=True)(lambda x: x * 2)
        compiled = compile_source(
            "main() par_split(dbl, mk(), 4)", registry=reg, prelude=True
        )
        assert compiled.run().value == [2, 4, 6, 8]

    def test_mutable_elements_are_isolated(self):
        # ``element`` copies mutable payloads: writes through one piece
        # must not reach the package.
        reg = default_registry()
        reg.register(name="mk", pure=True)(lambda: ([0], [0]))
        reg.register(name="poke", modifies=(0,))(
            lambda lst: (lst.__setitem__(0, 9), lst)[1]
        )
        reg.register(name="peek", pure=True)(lambda pkg: pkg[0][0])
        compiled = compile_source(
            """
            main()
              let pkg = mk()
                  poked = par_split(poke, pkg, 2)
              in <poked, peek(pkg)>
            """,
            registry=reg,
            prelude=True,
        )
        poked, original_first = compiled.run().value
        assert original_first == 0
        assert poked == [[9], [9]]  # par_* results are lists


class TestDynamicWidthScaling:
    """The point of the extension: width is a value, so speedup follows
    the machine, not the source text (contrast the hard-wired 4-way)."""

    def test_scales_past_four(self):
        reg = default_registry()
        reg.register(name="work", pure=True, cost=100_000.0)(lambda i: i)
        compiled = compile_source(
            "main(n) par_reduce(add, work, 0, n)", registry=reg, prelude=True
        )
        t = {
            p: SimulatedExecutor(uniform(p)).run(
                compiled.graph, args=(16,), registry=reg
            ).ticks
            for p in (1, 4, 8, 16)
        }
        assert t[1] / t[4] == pytest.approx(4.0, rel=0.05)
        assert t[1] / t[8] == pytest.approx(8.0, rel=0.05)
        assert t[1] / t[16] == pytest.approx(16.0, rel=0.1)
