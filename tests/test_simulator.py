"""The simulated multiprocessor: time algebra, machine models, traffic."""

import pytest

from repro import compile_source
from repro.errors import MachineError
from repro.machine import (
    MachineModel,
    SimulatedExecutor,
    butterfly,
    cray_2,
    cray_ymp,
    sequent,
    speedup_curve,
    uniform,
)
from repro.runtime import SequentialExecutor, default_registry

from tests.conftest import FORK_JOIN_SRC, fork_join_registry


@pytest.fixture
def fork_join():
    reg = fork_join_registry()
    return compile_source(FORK_JOIN_SRC, registry=reg), reg


class TestMachineModels:
    def test_presets_exist(self):
        assert cray_ymp().processors == 4
        assert cray_2().processors == 4
        assert sequent().processors == 3
        assert butterfly().numa

    def test_with_processors(self):
        assert cray_ymp().with_processors(2).processors == 2

    def test_invalid_processor_count(self):
        with pytest.raises(MachineError):
            uniform(0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(MachineError):
            MachineModel(name="bad", processors=1, dispatch_ticks=-1)


class TestTimeAlgebra:
    def test_single_processor_time_is_total_work(self, fork_join):
        compiled, reg = fork_join
        r = SimulatedExecutor(uniform(1)).run(compiled.graph, registry=reg)
        # init(10) + 4 x convolve(1000) + term(10); uniform machine has
        # zero dispatch/node/activation overhead.
        assert r.ticks == pytest.approx(10 + 4 * 1000 + 10)

    def test_infinite_processors_time_is_critical_path(self, fork_join):
        compiled, reg = fork_join
        r = SimulatedExecutor(uniform(64)).run(compiled.graph, registry=reg)
        assert r.ticks == pytest.approx(10 + 1000 + 10)

    def test_two_processors_pack_two_each(self, fork_join):
        compiled, reg = fork_join
        r = SimulatedExecutor(uniform(2)).run(compiled.graph, registry=reg)
        assert r.ticks == pytest.approx(10 + 2000 + 10)

    def test_three_processor_plateau(self, fork_join):
        # The paper's figure-1 phenomenon: with four equal tasks, three
        # processors are no better than two.
        compiled, reg = fork_join
        two = SimulatedExecutor(uniform(2)).run(compiled.graph, registry=reg)
        three = SimulatedExecutor(uniform(3)).run(compiled.graph, registry=reg)
        assert three.ticks == pytest.approx(two.ticks)

    def test_graham_bound(self, fork_join):
        compiled, reg = fork_join
        work = SimulatedExecutor(uniform(1)).run(compiled.graph, registry=reg).ticks
        cp = SimulatedExecutor(uniform(64)).run(compiled.graph, registry=reg).ticks
        for p in (2, 3, 4, 5):
            t = SimulatedExecutor(uniform(p)).run(compiled.graph, registry=reg).ticks
            assert t >= max(cp, work / p) - 1e-9
            assert t <= work / p + cp + 1e-9

    def test_speedup_curve_shape(self, fork_join):
        compiled, reg = fork_join
        curve = speedup_curve(
            compiled.graph, uniform(1), [1, 2, 3, 4], registry=reg
        )
        assert curve[1] == 1.0
        assert curve[2] == pytest.approx(2.0, rel=0.02)
        assert curve[3] == pytest.approx(curve[2], rel=0.02)
        assert curve[4] > 3.5

    def test_results_match_real_executor(self, fork_join):
        compiled, reg = fork_join
        sim = SimulatedExecutor(cray_ymp()).run(compiled.graph, registry=reg)
        real = SequentialExecutor().run(compiled.graph, registry=reg)
        assert sim.value == real.value


class TestOverheadAccounting:
    def test_dispatch_overhead_counted(self, fork_join):
        compiled, reg = fork_join
        machine = uniform(1)
        machine = MachineModel(
            name="u", processors=1, dispatch_ticks=10.0, node_overhead_ticks=0.0,
            activation_ticks=0.0, default_op_ticks=1000.0,
        )
        r = SimulatedExecutor(machine).run(compiled.graph, registry=reg)
        assert r.dispatch_ticks_total == 10.0 * r.stats.tasks_fired
        assert 0 < r.overhead_fraction() < 1

    def test_coarse_grain_overhead_is_small(self, fork_join):
        # Section 7: < 1% overhead when operator grains dwarf dispatch.
        compiled, reg = fork_join
        big = SimulatedExecutor(
            uniform(4),
            op_cost_overrides={"convolve": 1_000_000.0},
        ).run(compiled.graph, registry=reg)
        assert big.overhead_fraction() < 0.01

    def test_op_cost_overrides(self, fork_join):
        compiled, reg = fork_join
        r = SimulatedExecutor(
            uniform(1), op_cost_overrides={"convolve": lambda x, k: 500.0}
        ).run(compiled.graph, registry=reg)
        assert r.ticks == pytest.approx(10 + 4 * 500 + 10)


class TestNUMAAndTraffic:
    @staticmethod
    def _block_program():
        reg = default_registry()
        import numpy as np

        @reg.register(name="big_block", cost=100.0)
        def big_block():
            return np.zeros(1000)  # 8000 bytes

        @reg.register(name="crunch", pure=True, cost=100.0)
        def crunch(a, k):
            return float(a.sum()) + k

        @reg.register(name="gather", pure=True, cost=10.0)
        def gather(a, b):
            return a + b

        src = """
        main()
          let blk = big_block()
              x = crunch(blk, 1)
              y = crunch(blk, 2)
          in gather(x, y)
        """
        return compile_source(src, registry=reg), reg

    def test_remote_reads_charged_on_numa(self):
        compiled, reg = self._block_program()
        machine = butterfly(2)
        r = SimulatedExecutor(machine).run(compiled.graph, registry=reg)
        # blk was produced on one processor; with two processors one
        # crunch runs remotely.
        assert r.traffic.remote_bytes >= 8000

    def test_no_remote_traffic_on_one_processor(self):
        compiled, reg = self._block_program()
        r = SimulatedExecutor(butterfly(1)).run(compiled.graph, registry=reg)
        assert r.traffic.remote_bytes == 0

    def test_uma_machines_have_no_remote_traffic(self):
        compiled, reg = self._block_program()
        r = SimulatedExecutor(cray_ymp()).run(compiled.graph, registry=reg)
        assert r.traffic.remote_bytes == 0

    def test_template_replication_ablation(self):
        # Template fetches happen on expansions, so use a call-heavy
        # program (fib) rather than the flat fork-join template.
        import dataclasses

        from tests.conftest import FIB_SRC

        compiled = compile_source(FIB_SRC)
        replicated = SimulatedExecutor(sequent()).run(compiled.graph, args=(10,))
        shared = SimulatedExecutor(
            dataclasses.replace(sequent(), replicate_templates=False)
        ).run(compiled.graph, args=(10,))
        assert replicated.traffic.template_fetch_bytes == 0
        assert shared.traffic.template_fetch_bytes > 0
        assert shared.ticks > replicated.ticks

    def test_memory_inventory_counts_templates(self, fork_join):
        compiled, reg = fork_join
        r = SimulatedExecutor(cray_ymp()).run(compiled.graph, registry=reg)
        assert r.memory.template_total > 0
        assert r.memory.peak_activation_total > 0
        assert 0 < r.memory.template_fraction <= 1


class TestDeterminismInSimulation:
    def test_same_machine_same_ticks(self, fork_join):
        compiled, reg = fork_join
        a = SimulatedExecutor(cray_ymp()).run(compiled.graph, registry=reg)
        b = SimulatedExecutor(cray_ymp()).run(compiled.graph, registry=reg)
        assert a.ticks == b.ticks
        assert a.value == b.value

    def test_seeded_schedules_change_ticks_not_values(self, fork_join):
        compiled, reg = fork_join
        values = set()
        for seed in (1, 2, 3):
            r = SimulatedExecutor(uniform(2), seed=seed).run(
                compiled.graph, registry=reg
            )
            values.add(r.value)
        assert len(values) == 1

    def test_tracer_records_processors(self, fork_join):
        compiled, reg = fork_join
        r = SimulatedExecutor(uniform(4), trace=True).run(
            compiled.graph, registry=reg
        )
        assert r.tracer is not None
        procs = {rec.processor for rec in r.tracer.op_records()}
        assert len(procs) > 1  # the fork really spread out
