"""Deep multiple-value packages and remaining parser corners."""

import pytest

from repro import compile_source
from repro.errors import ParseError
from repro.lang import parse_expression
from repro.runtime import default_registry


class TestNestedPackages:
    def test_package_of_packages(self):
        src = """
        main()
          let <ab, cd> = <<1, 2>, <3, 4>>
              <a, b> = ab
              <c, d> = cd
          in add(add(a, b), add(c, d))
        """
        assert compile_source(src).run().value == 10

    def test_operator_returning_nested_tuples(self):
        reg = default_registry()
        reg.register(name="nest")(lambda: ((1, 2), (3, (4, 5))))
        src = """
        main()
          let <left, right> = nest()
              <a, b> = left
              <c, de> = right
              <d, e> = de
          in add(add(a, b), add(c, add(d, e)))
        """
        assert compile_source(src, registry=reg).run().value == 15

    def test_package_with_blocks_inside(self):
        reg = default_registry()
        reg.register(name="mk_pair")(lambda: ([1, 2], [3, 4]))
        reg.register(name="head", pure=True)(lambda l: l[0])
        reg.register(name="bump", modifies=(0,))(
            lambda l: (l.__setitem__(0, 99), l)[1]
        )
        src = """
        main()
          let <x, y> = mk_pair()
              xb = bump(x)
          in <head(xb), head(y)>
        """
        assert compile_source(src, registry=reg).run().value == (99, 3)

    def test_package_aliasing_same_block_twice(self):
        # The same block appears twice in one package; a writer through
        # one slot must not be visible through the other.
        reg = default_registry()
        reg.register(name="mk")(lambda: [7])
        reg.register(name="pair_of", pure=True)(lambda l: None)  # unused
        reg.register(name="bump", modifies=(0,))(
            lambda l: (l.__setitem__(0, l[0] + 1), l)[1]
        )
        reg.register(name="head", pure=True)(lambda l: l[0])
        src = """
        main()
          let blk = mk()
              <a, b> = <blk, blk>
              ab = bump(a)
          in <head(ab), head(b)>
        """
        assert compile_source(src, registry=reg).run().value == (8, 7)

    def test_package_as_function_result(self):
        src = """
        main(n) let <lo, hi> = bounds(n) in sub(hi, lo)
        bounds(n) <n, mul(n, 3)>
        """
        assert compile_source(src).run(args=(5,)).value == 10

    def test_package_passed_whole_to_function(self):
        src = """
        main(n)
          let pkg = <n, incr(n)>
          in spread(pkg)
        spread(p) let <a, b> = p in add(a, b)
        """
        assert compile_source(src).run(args=(4,)).value == 9


class TestParserCorners:
    def test_trailing_comma_in_loopvar_before_brace(self):
        e = parse_expression(
            "iterate { i = 0, incr(i), } while is_less(i, 2), result i"
        )
        assert len(e.loopvars) == 1

    def test_expression_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("add(1, 2) extra")

    def test_angle_package_single_element(self):
        e = parse_expression("<x>")
        assert len(e.items) == 1

    def test_one_element_package_runtime(self):
        src = "main(n) let <only> = <incr(n)> in only"
        assert compile_source(src).run(args=(1,)).value == 2

    def test_nested_parens(self):
        assert compile_source("main() ((add((1), (2))))").run().value == 3

    def test_keyword_like_prefixes_as_arguments(self):
        # names beginning with keywords must parse as identifiers
        src = "main(inner, thenv) add(inner, thenv)"
        assert compile_source(src).run(args=(1, 2)).value == 3


class TestMergeSemantics:
    def test_merge_empty_inputs(self):
        assert compile_source("main() merge(NULL, NULL)").run().value == []

    def test_merge_mixed(self):
        reg = default_registry()
        reg.register(name="some_list")(lambda: [10, 20])
        src = "main() merge(1, NULL, some_list(), 2)"
        assert compile_source(src, registry=reg).run().value == [1, 10, 20, 2]
