"""Graph generation: template structure for known programs."""

from repro import compile_source
from repro.graph.ir import NodeKind

from tests.conftest import FACTORIAL_SRC, FIB_SRC


def nodes_of_kind(template, kind):
    return [n for n in template.nodes if n.kind is kind]


class TestFlatTemplates:
    def test_fork_join_shape(self):
        from tests.conftest import FORK_JOIN_SRC, fork_join_registry

        compiled = compile_source(FORK_JOIN_SRC, registry=fork_join_registry())
        main = compiled.graph.template("main")
        ops = [n.name for n in nodes_of_kind(main, NodeKind.OP)]
        assert ops.count("convolve") == 4
        assert "init_fn" in ops and "term_fn" in ops
        # No expansions at all: a single flat template.
        assert not nodes_of_kind(main, NodeKind.CALL)
        assert not nodes_of_kind(main, NodeKind.IF)

    def test_const_deduplication(self):
        compiled = compile_source(
            "main(n) add(add(n, 7), add(n, 7))", optimize_passes=()
        )
        consts = nodes_of_kind(compiled.graph.template("main"), NodeKind.CONST)
        assert len(consts) == 1  # the two 7s share one node

    def test_param_nodes_lead(self):
        compiled = compile_source("main(a, b) add(a, b)")
        main = compiled.graph.template("main")
        assert main.nodes[0].kind is NodeKind.PARAM
        assert main.nodes[1].kind is NodeKind.PARAM
        assert main.params == ["a", "b"]


class TestConditionalArms:
    def test_if_produces_two_arm_templates(self):
        compiled = compile_source("main(n) if n then incr(n) else decr(n)")
        names = set(compiled.graph.templates)
        assert any(".then" in n for n in names)
        assert any(".else" in n for n in names)

    def test_arm_captures_free_values(self):
        compiled = compile_source("main(n) if n then incr(n) else 0")
        then = next(
            t for name, t in compiled.graph.templates.items()
            if name.endswith(".then")
        )
        assert then.captures == ["n"]
        assert then.params == []

    def test_if_node_capture_split(self):
        compiled = compile_source(
            "main(a, b) if is_less(a, b) then incr(a) else decr(b)"
        )
        main = compiled.graph.template("main")
        if_node = nodes_of_kind(main, NodeKind.IF)[0]
        assert if_node.n_then_captures == 1
        # cond + then captures (a) + else captures (b)
        assert len(if_node.inputs) == 3

    def test_result_if_is_tail(self):
        compiled = compile_source("main(n) if n then 1 else 2")
        main = compiled.graph.template("main")
        if_node = nodes_of_kind(main, NodeKind.IF)[0]
        assert if_node.tail


class TestCallsAndRecursion:
    def test_recursive_call_marked(self):
        compiled = compile_source(FIB_SRC)
        recursive_calls = [
            n
            for t in compiled.graph.templates.values()
            for n in nodes_of_kind(t, NodeKind.CALL)
            if n.recursive
        ]
        assert len(recursive_calls) == 2  # fib(n-1), fib(n-2)

    def test_nonrecursive_call_unmarked(self):
        compiled = compile_source(
            "main(n) helper(n)\nhelper(x) incr(x)", optimize_passes=()
        )
        main = compiled.graph.template("main")
        call = nodes_of_kind(main, NodeKind.CALL)[0]
        assert not call.recursive
        assert call.tail  # the call's output is main's result

    def test_lowered_loop_call_is_tail_and_recursive(self):
        compiled = compile_source(FACTORIAL_SRC, optimize_passes=())
        loop_templates = [
            t for name, t in compiled.graph.templates.items() if "loop$" in name
        ]
        assert loop_templates
        # Inside the loop's then-arm, the self-call is recursive + tail.
        arm = next(
            t for name, t in compiled.graph.templates.items()
            if "loop$" in name and name.endswith(".then")
        )
        call = nodes_of_kind(arm, NodeKind.CALL)[0]
        assert call.recursive and call.tail

    def test_self_capture_uses_placeholder(self):
        from repro.runtime.values import _SELF

        compiled = compile_source(FACTORIAL_SRC, optimize_passes=())
        main = compiled.graph.template("main")
        self_consts = [
            n
            for n in nodes_of_kind(main, NodeKind.CONST)
            if n.value is _SELF
        ]
        assert len(self_consts) == 1  # the loop closure captures itself


class TestClosuresAndOperatorRefs:
    def test_local_function_becomes_closure_node(self):
        compiled = compile_source(
            "main(n) let h(x) add(x, n) in h(1)", optimize_passes=()
        )
        main = compiled.graph.template("main")
        closure = nodes_of_kind(main, NodeKind.CLOSURE)[0]
        assert closure.template == "main.h"
        assert len(closure.inputs) == 1  # captures n
        h = compiled.graph.template("main.h")
        assert h.captures == ["n"]

    def test_operator_as_value_becomes_opref(self):
        compiled = compile_source(
            "main(n) apply_fn(incr, n)\napply_fn(f, x) f(x)",
            optimize_passes=(),
        )
        main = compiled.graph.template("main")
        oprefs = nodes_of_kind(main, NodeKind.OPREF)
        assert [n.name for n in oprefs] == ["incr"]

    def test_top_level_function_reference_is_closure(self):
        compiled = compile_source(
            "main(n) apply_fn(helper, n)\napply_fn(f, x) f(x)\n"
            "helper(x) incr(x)",
            optimize_passes=(),
        )
        main = compiled.graph.template("main")
        closures = nodes_of_kind(main, NodeKind.CLOSURE)
        # Both the direct callee (apply_fn) and the passed-by-value
        # function (helper) materialize as closure nodes.
        assert {n.template for n in closures} == {"apply_fn", "helper"}
        assert all(n.inputs == [] for n in closures)  # nothing captured


class TestTuples:
    def test_tuple_and_untuple_nodes(self):
        compiled = compile_source(
            "main(a, b) let <x, y> = <a, b> in add(x, y)", optimize_passes=()
        )
        main = compiled.graph.template("main")
        assert nodes_of_kind(main, NodeKind.TUPLE)
        untuple = nodes_of_kind(main, NodeKind.UNTUPLE)[0]
        assert untuple.n_outputs == 2


class TestPruning:
    def test_unreachable_templates_pruned(self):
        compiled = compile_source(
            "main(n) incr(n)\ndead_helper(x) decr(x)"
        )
        assert "dead_helper" not in compiled.graph.templates

    def test_reachable_through_closure_value_kept(self):
        compiled = compile_source(
            "main(n) apply_fn(helper, n)\napply_fn(f, x) f(x)\n"
            "helper(x) incr(x)",
            optimize_passes=(),
        )
        assert "helper" in compiled.graph.templates

    def test_prune_counts(self):
        from repro.compiler import analyze, analyze_program, generate_graphs, lower_program
        from repro.lang import parse_program

        program = lower_program(
            parse_program("main() 1\nunused_a(x) x\nunused_b(x) x")
        )
        env = analyze(program)
        graph = generate_graphs(program, env, analyze_program(env))
        assert graph.prune_unreachable() == 2
        assert set(graph.templates) == {"main"}
