"""Affinity scheduling policies (section 9.3)."""

import numpy as np
import pytest

from repro import compile_source
from repro.machine import SimulatedExecutor, butterfly, uniform
from repro.runtime import default_registry
from repro.runtime.affinity import (
    AffinityPolicy,
    OperatorAffinity,
    make_policy,
)


class TestPolicyFactory:
    def test_names(self):
        assert make_policy("none").name == "none"
        assert make_policy("operator").name == "operator"
        assert make_policy("data").name == "data"

    def test_instance_passthrough(self):
        policy = OperatorAffinity()
        assert make_policy(policy) is policy

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("psychic")


class TestPolicyChoices:
    def test_default_picks_lowest_idle(self):
        class FakeTask:
            def label(self):
                return "x"

        assert AffinityPolicy().choose(FakeTask(), {3, 1, 2}) == 1

    def test_operator_affinity_remembers(self):
        class FakeTask:
            def label(self):
                return "convolve"

        policy = OperatorAffinity()
        task = FakeTask()
        policy.notify(task, 2)
        assert policy.choose(task, {0, 1, 2}) == 2

    def test_operator_affinity_never_waits(self):
        class FakeTask:
            def label(self):
                return "convolve"

        policy = OperatorAffinity()
        task = FakeTask()
        policy.notify(task, 2)
        # Preferred processor busy: pick another rather than stall.
        assert policy.choose(task, {0, 1}) == 0


def _pipeline_program():
    """A two-stage pipeline over a large block: producer then consumers."""
    reg = default_registry()

    @reg.register(name="produce", cost=100.0)
    def produce():
        return np.zeros(10_000)  # 80 KB

    @reg.register(name="stage", pure=True, cost=100.0)
    def stage(a, k):
        return float(a.sum()) + k

    @reg.register(name="combine", pure=True, cost=10.0)
    def combine(a, b):
        return a + b

    src = """
    main()
      let blk = produce()
          x1 = stage(blk, 1)
          y1 = stage(blk, 2)
      in combine(x1, y1)
    """
    return compile_source(src, registry=reg), reg


class TestAffinityOnNUMA:
    def test_data_affinity_reduces_remote_traffic(self):
        compiled, reg = _pipeline_program()
        machine = butterfly(4)
        base = SimulatedExecutor(machine, affinity="none").run(
            compiled.graph, registry=reg
        )
        data = SimulatedExecutor(machine, affinity="data").run(
            compiled.graph, registry=reg
        )
        # Both stages read the 80 KB block; data affinity runs at least
        # one of them where the block lives.
        assert data.traffic.remote_bytes <= base.traffic.remote_bytes
        assert data.value == base.value

    def test_policies_never_change_results(self):
        compiled, reg = _pipeline_program()
        values = {
            SimulatedExecutor(butterfly(3), affinity=policy)
            .run(compiled.graph, registry=reg)
            .value
            for policy in ("none", "operator", "data")
        }
        assert len(values) == 1

    def test_affinity_is_work_conserving(self):
        # Even with affinity, a uniform machine's fork of equal tasks
        # still finishes in critical-path time given enough processors.
        compiled, reg = _pipeline_program()
        for policy in ("operator", "data"):
            r = SimulatedExecutor(uniform(8), affinity=policy).run(
                compiled.graph, registry=reg
            )
            assert r.ticks == pytest.approx(100 + 100 + 10)
