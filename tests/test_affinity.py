"""Affinity scheduling policies (section 9.3) — simulated and real.

The first half covers the policy objects and the simulator's use of
them; the second half covers the real locality layer built on the same
policies: the worker-resident block cache, by-reference argument
shipping, the master-side residency tracker, and the property that none
of it ever changes a result — affinity is bit-identical to legacy
least-loaded dispatch under every executor knob, cache miss, in-place
write, and worker crash.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_source
from repro.faults import parse_fault_spec
from repro.machine import SimulatedExecutor, butterfly, uniform
from repro.obs import RunContext
from repro.obs.expo import render_prometheus
from repro.runtime import (
    FaultPolicy,
    ProcessExecutor,
    SequentialExecutor,
    default_registry,
)
from repro.runtime.affinity import (
    AffinityPolicy,
    OperatorAffinity,
    input_residency,
    make_policy,
    pick_most_resident,
)
from repro.runtime.blocks import wrap_payload
from repro.runtime.supervise import ResidencyTracker
from repro.runtime.values import MultiValue
from repro.runtime.workers import _CACHE_MISS, BlockCache

from tests.test_properties import REGISTRY, _programs


class TestPolicyFactory:
    def test_names(self):
        assert make_policy("none").name == "none"
        assert make_policy("operator").name == "operator"
        assert make_policy("data").name == "data"

    def test_instance_passthrough(self):
        policy = OperatorAffinity()
        assert make_policy(policy) is policy

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("psychic")


class TestPolicyChoices:
    def test_default_picks_lowest_idle(self):
        class FakeTask:
            def label(self):
                return "x"

        assert AffinityPolicy().choose(FakeTask(), {3, 1, 2}) == 1

    def test_operator_affinity_remembers(self):
        class FakeTask:
            def label(self):
                return "convolve"

        policy = OperatorAffinity()
        task = FakeTask()
        policy.notify(task, 2)
        assert policy.choose(task, {0, 1, 2}) == 2

    def test_operator_affinity_never_waits(self):
        class FakeTask:
            def label(self):
                return "convolve"

        policy = OperatorAffinity()
        task = FakeTask()
        policy.notify(task, 2)
        # Preferred processor busy: pick another rather than stall.
        assert policy.choose(task, {0, 1}) == 0


def _pipeline_program():
    """A two-stage pipeline over a large block: producer then consumers."""
    reg = default_registry()

    @reg.register(name="produce", cost=100.0)
    def produce():
        return np.zeros(10_000)  # 80 KB

    @reg.register(name="stage", pure=True, cost=100.0)
    def stage(a, k):
        return float(a.sum()) + k

    @reg.register(name="combine", pure=True, cost=10.0)
    def combine(a, b):
        return a + b

    src = """
    main()
      let blk = produce()
          x1 = stage(blk, 1)
          y1 = stage(blk, 2)
      in combine(x1, y1)
    """
    return compile_source(src, registry=reg), reg


class TestAffinityOnNUMA:
    def test_data_affinity_reduces_remote_traffic(self):
        compiled, reg = _pipeline_program()
        machine = butterfly(4)
        base = SimulatedExecutor(machine, affinity="none").run(
            compiled.graph, registry=reg
        )
        data = SimulatedExecutor(machine, affinity="data").run(
            compiled.graph, registry=reg
        )
        # Both stages read the 80 KB block; data affinity runs at least
        # one of them where the block lives.
        assert data.traffic.remote_bytes <= base.traffic.remote_bytes
        assert data.value == base.value

    def test_policies_never_change_results(self):
        compiled, reg = _pipeline_program()
        values = {
            SimulatedExecutor(butterfly(3), affinity=policy)
            .run(compiled.graph, registry=reg)
            .value
            for policy in ("none", "operator", "data")
        }
        assert len(values) == 1

    def test_affinity_is_work_conserving(self):
        # Even with affinity, a uniform machine's fork of equal tasks
        # still finishes in critical-path time given enough processors.
        compiled, reg = _pipeline_program()
        for policy in ("operator", "data"):
            r = SimulatedExecutor(uniform(8), affinity=policy).run(
                compiled.graph, registry=reg
            )
            assert r.ticks == pytest.approx(100 + 100 + 10)

# ---------------------------------------------------------------------------
# Shared placement helpers (one §9.3 rule, two dispatch paths)
# ---------------------------------------------------------------------------
class TestPlacementHelpers:
    def test_input_residency_groups_bytes_by_holder(self):
        a = wrap_payload(np.zeros(100))   # 800 bytes
        b = wrap_payload(np.zeros(25))    # 200 bytes
        holders = {id(a): (0, 2), id(b): (2,)}
        got = input_residency([a, b, 7], lambda blk: holders[id(blk)])
        assert got == {0: 800, 2: 1000}

    def test_input_residency_walks_packages(self):
        a = wrap_payload(np.zeros(10))
        pkg = MultiValue((a, MultiValue((a,))))
        got = input_residency([pkg], lambda blk: (1,))
        assert got == {1: 160}

    def test_pick_most_resident_prefers_bytes_then_lowest_id(self):
        assert pick_most_resident({2: 100, 1: 100}, {0, 1, 2}) == 1
        assert pick_most_resident({2: 300, 1: 100}, {0, 1, 2}) == 2
        assert pick_most_resident({}, {3, 1}) == 1
        # A non-idle holder never wins: choose among idle only.
        assert pick_most_resident({0: 999}, {1, 2}) == 1


# ---------------------------------------------------------------------------
# The worker-resident cache
# ---------------------------------------------------------------------------
class TestBlockCache:
    def test_hit_miss_and_stats(self):
        cache = BlockCache(max_bytes=10_000)
        v = np.zeros(100)
        assert cache.put(1, v)
        assert cache.get(1) is v
        assert cache.get(2) is _CACHE_MISS
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1
        assert s["resident_bytes"] == v.nbytes

    def test_lru_eviction_is_oldest_first(self):
        cache = BlockCache(max_bytes=2 * 800)
        cache.put(1, np.zeros(100))
        cache.put(2, np.zeros(100))
        cache.get(1)                      # 1 is now most-recently used
        cache.put(3, np.zeros(100))       # evicts 2, not 1
        assert cache.get(2) is _CACHE_MISS
        assert cache.get(1) is not _CACHE_MISS
        assert cache.get(3) is not _CACHE_MISS
        assert cache.stats()["evictions"] == 1

    def test_oversized_payload_is_rejected_not_cached(self):
        cache = BlockCache(max_bytes=100)
        assert not cache.put(1, np.zeros(100))
        assert cache.get(1) is _CACHE_MISS
        assert cache.stats()["resident_bytes"] == 0

    def test_invalidate_releases_bytes(self):
        cache = BlockCache(max_bytes=10_000)
        cache.put(1, np.zeros(100))
        cache.put(2, np.zeros(100))
        cache.invalidate([1, 99])         # unknown ids are fine
        assert cache.get(1) is _CACHE_MISS
        assert cache.stats()["resident_bytes"] == 800

    def test_replacing_a_bid_accounts_bytes_once(self):
        cache = BlockCache(max_bytes=10_000)
        cache.put(1, np.zeros(100))
        cache.put(1, np.zeros(200))
        assert cache.stats()["resident_bytes"] == 1600


# ---------------------------------------------------------------------------
# The master-side residency tracker
# ---------------------------------------------------------------------------
class TestResidencyTracker:
    def test_bids_are_monotonic_and_never_reused(self):
        t = ResidencyTracker(2)
        a, b = wrap_payload(np.zeros(4)), wrap_payload(np.zeros(4))
        bid_a = t.ensure_bid(a)
        assert t.ensure_bid(a) == bid_a
        assert t.ensure_bid(b) > bid_a
        assert t.reserve_bid() > t.ensure_bid(b)

    def test_residency_add_discard(self):
        t = ResidencyTracker(2)
        blk = wrap_payload(np.zeros(4))
        bid = t.ensure_bid(blk)
        t.add(bid, 1)
        assert t.resident(bid, 1) and not t.resident(bid, 0)
        assert set(t.holders(blk)) == {1}
        t.discard(bid, 1)
        assert not t.resident(bid, 1)

    def test_block_death_queues_invalidations(self):
        t = ResidencyTracker(2)
        blk = wrap_payload(np.zeros(4))
        bid = t.ensure_bid(blk)
        t.add(bid, 0)
        t.add(bid, 1)
        del blk  # GC fires the weakref callback
        assert t.take_invalidations(0) == [bid]
        assert t.take_invalidations(1) == [bid]
        assert t.take_invalidations(0) == []  # drained

    def test_forget_invalidates_now_and_not_again_at_death(self):
        t = ResidencyTracker(1)
        blk = wrap_payload(np.zeros(4))
        bid = t.ensure_bid(blk)
        t.add(bid, 0)
        t.forget(blk)
        assert t.take_invalidations(0) == [bid]
        del blk  # eventual death must not queue a second round
        assert t.take_invalidations(0) == []

    def test_drop_worker_purges_residency_and_queue(self):
        t = ResidencyTracker(2)
        blk = wrap_payload(np.zeros(4))
        bid = t.ensure_bid(blk)
        t.add(bid, 0)
        t.add(bid, 1)
        dead = wrap_payload(np.zeros(4))
        t.add(t.ensure_bid(dead), 0)
        del dead  # queues an invalidation for worker 0
        t.drop_worker(0)
        assert not t.resident(bid, 0)
        assert t.resident(bid, 1)
        assert t.take_invalidations(0) == []  # fresh respawn: nothing

    def test_adopt_registers_result_blocks(self):
        t = ResidencyTracker(1)
        blk = wrap_payload(np.zeros(4))
        bid = t.reserve_bid()
        t.adopt(blk, bid, 0)
        assert blk.bid == bid
        assert t.resident(bid, 0)
        # Adopting an already-tracked block is a no-op.
        t.adopt(blk, t.reserve_bid(), 0)
        assert blk.bid == bid

    def test_stats_shape(self):
        t = ResidencyTracker(1)
        blk = wrap_payload(np.zeros(4))
        t.add(t.ensure_bid(blk), 0)
        s = t.stats()
        assert s["blocks_tracked"] == 1
        assert s["resident_blocks"] == 1
        assert s["resident_bytes"] == blk.nbytes
        assert s["hit_rate"] == 1.0


# ---------------------------------------------------------------------------
# The cachemiss fault kind
# ---------------------------------------------------------------------------
class TestCacheMissFault:
    def test_parses_and_roundtrips(self):
        spec = parse_fault_spec("cachemiss:op=af_stage,p=1.0")
        assert spec.clauses[0].kind == "cachemiss"
        assert parse_fault_spec(spec.describe()) == spec

    def test_fires_on_lookup_not_on_call(self):
        inj = parse_fault_spec("cachemiss:p=1.0").build()
        inj.on_call("anything")  # must not raise, sleep, or kill
        assert inj.on_cache_lookup("anything")
        assert inj.injected == 1

    def test_scoped_by_operator(self):
        inj = parse_fault_spec("cachemiss:op=af_stage,p=1.0").build()
        assert not inj.on_cache_lookup("other")
        assert inj.on_cache_lookup("af_stage")


# ---------------------------------------------------------------------------
# The real locality layer: ref shipping, misses, invalidation, crashes
# ---------------------------------------------------------------------------
def _locality_registry():
    reg = default_registry()

    @reg.register(name="af_produce", pure=True, cost=4e6)
    def af_produce(seed):
        rng = np.random.default_rng(seed)
        return rng.standard_normal(4096)  # 32 KB

    @reg.register(name="af_stage", pure=True, cost=4e6)
    def af_stage(a, k):
        return float((a * k).sum())

    @reg.register(name="af_bump", modifies=(0,), cost=1.0)
    def af_bump(a, k):
        a += k
        return a

    return reg


AFFINITY_REGISTRY = _locality_registry()

#: One producer, six consumers of the same 32 KB block: the fan-out
#: shape locality is for.  With ``--affinity data`` the block crosses
#: the wire once (or zero times, via result adoption); with ``none`` it
#: is re-encoded for every consumer.
FANOUT_SRC = """
main(seed)
  let blk = af_produce(seed)
      s1 = af_stage(blk, 1)
      s2 = af_stage(blk, 2)
      s3 = af_stage(blk, 3)
      s4 = af_stage(blk, 4)
      s5 = af_stage(blk, 5)
      s6 = af_stage(blk, 6)
  in add(add(add(s1, s2), add(s3, s4)), add(s5, s6))
"""

FANOUT = compile_source(FANOUT_SRC, registry=AFFINITY_REGISTRY)

#: Remote reads of a block, then a *local* in-place bump, then a remote
#: read of the mutated block — the invalidation-ordering case: the
#: worker's resident pre-bump copy must never satisfy the post-bump read.
MUTATE_SRC = """
main(seed)
  let blk = af_produce(seed)
      a = af_stage(blk, 2)
      b = af_bump(blk, a)
      c = af_stage(b, 3)
  in add(a, c)
"""

MUTATE = compile_source(MUTATE_SRC, registry=AFFINITY_REGISTRY)


def _run_fanout(affinity, workers=1, fault_spec=None, fault_policy=None):
    return ProcessExecutor(
        workers,
        cost_threshold=0.0,
        affinity=affinity,
        fault_spec=fault_spec,
        fault_policy=fault_policy,
    ).run(FANOUT.graph, args=(7,), registry=AFFINITY_REGISTRY)


class TestLocalityDispatch:
    def test_ref_shipping_cuts_encoded_bytes_bit_identically(self):
        reference = SequentialExecutor().run(
            FANOUT.graph, args=(7,), registry=AFFINITY_REGISTRY
        )
        none = _run_fanout("none")
        data = _run_fanout("data")
        assert none.value == reference.value
        assert data.value == reference.value
        # Legacy dispatch never refs; affinity refs the fan-out reads.
        assert none.stats.blocks_ref_shipped == 0
        assert none.stats.encode_bytes_avoided == 0
        assert data.stats.blocks_ref_shipped >= 2
        assert data.stats.encode_bytes_avoided > 0
        # The headline claim: at least 2x fewer encoded wire bytes.
        assert data.stats.encode_bytes * 2 <= none.stats.encode_bytes

    def test_operator_affinity_is_bit_identical_too(self):
        none = _run_fanout("none")
        op = _run_fanout("operator", workers=2)
        assert op.value == none.value

    def test_cache_miss_fallback_is_bit_identical(self):
        # Force every by-reference lookup to miss: each affected fire
        # comes back as a structured miss reply and re-dispatches fully
        # encoded.  No retry budget is consumed and the answer is
        # unchanged.
        none = _run_fanout("none")
        missy = _run_fanout(
            "data",
            fault_spec=parse_fault_spec("cachemiss:p=1.0"),
            fault_policy=FaultPolicy(max_retries=1, backoff=0.0),
        )
        assert missy.value == none.value
        assert missy.stats.affinity_misses >= 1
        assert missy.stats.fires_retried == 0

    def test_midrun_in_place_write_is_bit_identical(self):
        reference = SequentialExecutor().run(
            MUTATE.graph, args=(3,), registry=AFFINITY_REGISTRY
        )
        for affinity in ("none", "data"):
            got = ProcessExecutor(2, affinity=affinity).run(
                MUTATE.graph, args=(3,), registry=AFFINITY_REGISTRY
            )
            assert got.value == reference.value
        assert got.stats.in_place_writes >= 1

    def test_crash_then_ref_is_bit_identical(self):
        # Kill the worker on its first af_stage call — after the block
        # went resident.  The retried fire must not ref the dead (then
        # respawned, hence empty) cache.
        none = _run_fanout("none")
        crashy = _run_fanout(
            "data",
            fault_spec=parse_fault_spec("kill:op=af_stage,nth=1"),
            fault_policy=FaultPolicy(
                max_retries=5, backoff=0.0, max_respawns=4
            ),
        )
        assert crashy.value == none.value
        assert crashy.stats.worker_crashes >= 1

    def test_memory_gauges_reach_prometheus(self):
        ctx = RunContext("affinity-expo", flight_recorder=False)
        got = ProcessExecutor(
            1, cost_threshold=0.0, affinity="data", run_ctx=ctx
        ).run(FANOUT.graph, args=(7,), registry=AFFINITY_REGISTRY)
        assert got.stats.blocks_ref_shipped >= 1
        gauges = ctx.metrics.gauges
        assert any(k.startswith("shm_arena/") for k in gauges)
        assert any(k.startswith("worker_cache/") for k in gauges)
        assert gauges["worker_cache/refs_shipped"].value >= 1
        text = render_prometheus(ctx.metrics)
        assert 'delirium_shm_arena{key="created"}' in text
        assert 'delirium_worker_cache{key="refs_shipped"}' in text
        # The event-driven counters ride the same registry.
        assert ctx.metrics.counters["blocks_ref_shipped"].value >= 1


# ---------------------------------------------------------------------------
# The property: affinity placement never changes an answer
# ---------------------------------------------------------------------------
def _opt_passes(fuse, donate):
    from repro.compiler.passes.pipeline import PASS_ORDER

    extra = ()
    if fuse:
        extra += ("fuse",)
    if donate:
        extra += ("donate",)
    return PASS_ORDER + extra


class TestAffinityProperty:
    @settings(max_examples=6, deadline=None)
    @given(
        _programs(),
        st.integers(-5, 5),
        st.integers(1, 3),
        st.booleans(),
        st.booleans(),
        st.sampled_from(["data", "operator"]),
        st.booleans(),
        st.integers(0, 100),
    )
    def test_affinity_equals_none(
        self, source, n, workers, fuse, donate, affinity, batch, seed
    ):
        # Every fire force-dispatched over generated programs that share
        # mutable blocks across destructive bumps — placement policy,
        # ref shipping, and result adoption must all be invisible in the
        # answer under any worker count, seed, and optimization setting.
        compiled = compile_source(
            source, registry=REGISTRY, optimize_passes=_opt_passes(fuse, donate)
        )
        reference = SequentialExecutor().run(
            compiled.graph, args=(n,), registry=REGISTRY
        ).value

        def run(policy):
            return ProcessExecutor(
                workers,
                cost_threshold=0.0,
                shm_threshold=256,
                seed=seed,
                batch=batch,
                affinity=policy,
            ).run(compiled.graph, args=(n,), registry=REGISTRY).value

        base = run("none")
        assert base == reference
        assert run(affinity) == base
