"""Streaming sources, sinks, and the stream runner (PR 10 tentpole)."""

from __future__ import annotations

import json
import resource

import pytest

from repro import compile_source
from repro.obs import EventBus, QueueSaturated, attach_metrics
from repro.runtime.stream import (
    END,
    CallableSource,
    JsonlSink,
    LineSource,
    MemorySink,
    StreamError,
    StreamRunner,
    count_source,
)

#: main(x) -> x*x + 1, builtins only.
MAP_SRC = """
main(x)
  add(mul(x, x), 1)
"""

#: Carry-mode running sum of squares: main(acc, x) -> acc + x*x.
SUM_SRC = """
main(acc, x)
  add(acc, mul(x, x))
"""

#: A four-wide fork so a tiny max_ready watermark must trip.
FAN_SRC = """
main(x)
  add(add(mul(x, x), mul(x, x)), add(mul(x, x), incr(x)))
"""


@pytest.fixture(scope="module")
def map_program():
    return compile_source(MAP_SRC)


@pytest.fixture(scope="module")
def sum_program():
    return compile_source(SUM_SRC)


class TestSources:
    def test_callable_source_pulls_and_ends(self):
        src = count_source(3)
        assert [src.next() for _ in range(3)] == [0, 1, 2]
        assert src.next() is END
        assert src.next() is END

    def test_callable_source_seek(self):
        src = count_source(5)
        src.next()
        src.seek(3)
        assert src.offset == 3
        assert src.next() == 3

    def test_unbounded_source_never_ends(self):
        src = count_source(None)
        for want in range(50):
            assert src.next() == want

    def test_negative_n_items_rejected(self):
        with pytest.raises(StreamError):
            CallableSource(lambda i: i, n_items=-1)

    def test_line_source_items_and_seek(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('{"a":1}\n{"a":2}\n{"a":3}\n')
        src = LineSource(str(path))
        assert src.next() == {"a": 1}
        assert src.next() == {"a": 2}
        src.seek(0)
        assert src.next() == {"a": 1}
        src.seek(2)
        assert src.next() == {"a": 3}
        assert src.next() is END
        src.close()


class TestSinks:
    def test_memory_sink_flush_contract(self):
        sink = MemorySink()
        sink.append(1)
        assert sink.items == []  # not durable until flush
        sink.flush()
        assert sink.items == [1]

    def test_memory_sink_restore_truncates_and_verifies(self):
        sink = MemorySink()
        for i in range(4):
            sink.append(i)
        sink.flush()
        state_at_2 = None
        probe = MemorySink()
        probe.append(0)
        probe.append(1)
        probe.flush()
        state_at_2 = probe.state_dict()
        sink.restore(state_at_2)
        assert sink.items == [0, 1]
        assert sink.digest == probe.digest

    def test_memory_sink_restore_refuses_divergent_content(self):
        good = MemorySink()
        good.append("a")
        good.flush()
        bad = MemorySink()
        bad.append("b")
        bad.flush()
        with pytest.raises(StreamError, match="digest"):
            bad.restore(good.state_dict())

    def test_jsonl_sink_durable_offsets(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        sink = JsonlSink(path)
        sink.append({"n": 1})
        assert sink.flushed == 0
        sink.flush()
        assert sink.flushed == 1
        assert sink.nbytes == len(b'{"n":1}\n')
        sink.close()
        assert open(path).read() == '{"n":1}\n'

    def test_jsonl_sink_restore_truncates_tail(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        sink = JsonlSink(path)
        sink.append(1)
        sink.flush()
        state = sink.state_dict()
        sink.append(2)
        sink.append(3)
        sink.flush()
        sink.close()
        resumed = JsonlSink(path, resume=True)
        resumed.restore(state)
        assert resumed.flushed == 1
        resumed.append(99)
        resumed.flush()
        resumed.close()
        assert open(path).read() == "1\n99\n"

    def test_jsonl_sink_restore_refuses_divergent_file(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        sink = JsonlSink(path)
        sink.append(1)
        sink.flush()
        state = sink.state_dict()
        sink.close()
        with open(path, "wb") as fh:
            fh.write(b"9\n")  # same length, different bytes
        resumed = JsonlSink(path, resume=True)
        with pytest.raises(StreamError, match="digest"):
            resumed.restore(state)
        resumed.close()

    def test_non_json_item_is_a_stream_error(self):
        sink = MemorySink()
        sink.append(object())
        with pytest.raises(StreamError, match="emit"):
            sink.flush()


class TestStreamRunner:
    def test_map_stream(self, map_program):
        runner = StreamRunner(map_program)
        sink = MemorySink()
        result = runner.run(count_source(5), sink)
        assert sink.items == [1, 2, 5, 10, 17]
        assert result.items == 5
        assert result.fires > 0
        assert result.value == 17

    def test_carry_stream(self, sum_program):
        runner = StreamRunner(sum_program, carry=True, initial=0)
        result = runner.run(count_source(5), MemorySink())
        assert result.value == sum(i * i for i in range(5))

    def test_emit_reduces_results(self, sum_program):
        runner = StreamRunner(
            sum_program, carry=True, initial=0, emit=lambda v: {"sum": v}
        )
        sink = MemorySink()
        runner.run(count_source(3), sink)
        assert sink.items == [{"sum": 0}, {"sum": 1}, {"sum": 5}]

    def test_limit_bounds_one_call(self, sum_program):
        runner = StreamRunner(sum_program, carry=True, initial=0)
        source = count_source(10)
        result = runner.run(source, MemorySink(), limit=4)
        assert result.items == 4
        assert source.offset == 4

    def test_unknown_executor_rejected(self, map_program):
        with pytest.raises(StreamError, match="unknown executor"):
            StreamRunner(map_program, executor="simulated")

    @pytest.mark.parametrize("executor", ["threaded", "process"])
    def test_executor_parity(self, sum_program, executor):
        reference = StreamRunner(
            sum_program, carry=True, initial=0
        ).run(count_source(6), MemorySink())
        runner = StreamRunner(
            sum_program,
            carry=True,
            initial=0,
            executor=executor,
            n_workers=2,
        )
        try:
            result = runner.run(count_source(6), MemorySink())
        finally:
            runner.close()
        assert result.value == reference.value
        assert result.sink_digest == reference.sink_digest

    def test_queue_saturation_observable(self):
        fan = compile_source(FAN_SRC)
        bus = EventBus()
        metrics = attach_metrics(bus)
        seen = []
        bus.subscribe(seen.append, events=(QueueSaturated,))
        runner = StreamRunner(fan, max_ready=1, bus=bus)
        runner.run(count_source(3), MemorySink())
        assert seen, "watermark of 1 on a fork must saturate"
        assert all(e.max_ready == 1 for e in seen)
        assert metrics.counter("queue_saturations").value >= len(seen)

    def test_flat_rss_over_long_stream(self, sum_program):
        """Backpressure tentpole: memory must not grow with stream length.

        Warm up on 200 items, then stream 2000 more and require RSS
        growth under 16 MiB — generous for allocator noise, far under
        what retaining even 1 KiB per item would show.
        """
        runner = StreamRunner(sum_program, carry=True, initial=0)
        runner.run(count_source(200), MemorySink())
        before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        sink = MemorySink()
        # JSON-encode-and-discard sink behavior: keep only the digest.
        sink.flush = lambda: sink._pending.clear()  # type: ignore[assignment]
        runner.run(count_source(2000), sink)
        after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        assert after - before < 16 * 1024  # KiB on Linux


class TestRetinaStream:
    def test_stream_equals_batch_v2(self):
        from repro.apps.retina import compile_retina
        from repro.apps.retina.model import RetinaConfig
        from repro.apps.retina.stream import stream_retina
        from repro.runtime import SequentialExecutor

        n = 2
        result = stream_retina(n)
        cfg = RetinaConfig(num_iter=n)
        compiled = compile_retina(2, cfg)
        batch = SequentialExecutor().run(
            compiled.graph, registry=compiled.registry
        )
        assert result.value.signature() == batch.value.signature()
        assert result.items == n

    def test_emits_one_signature_row_per_frame(self):
        from repro.apps.retina.stream import stream_retina

        sink = MemorySink()
        stream_retina(2, sink=sink)
        assert len(sink.items) == 2
        assert all(len(row) == 5 for row in sink.items)


class TestLogAnalyticsStream:
    def test_stream_equals_sequential_reference(self):
        from repro.apps.loganalytics import sequential_stats, stream_logs

        result = stream_logs(15, seed=11, batch_size=32)
        assert result.value == sequential_stats(11, 15, 32)

    def test_rows_are_running_aggregates(self):
        from repro.apps.loganalytics import stream_logs

        sink = MemorySink()
        stream_logs(5, sink=sink)
        batches = [row["batches"] for row in sink.items]
        assert batches == [1, 2, 3, 4, 5]
        records = [row["records"] for row in sink.items]
        assert records == sorted(records)

    def test_cli_module_runs(self, tmp_path, capsys):
        from repro.apps.loganalytics.__main__ import main

        out = tmp_path / "rows.jsonl"
        rc = main(["--items", "6", "--sink", str(out)])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["items"] == 6
        assert len(out.read_text().splitlines()) == 6
