"""Data blocks: reference counting, copy-on-write, wrapping."""

import numpy as np
import pytest

from repro.runtime.blocks import (
    BufferPool,
    DataBlock,
    copy_payload,
    payload_nbytes,
    release,
    retain,
    unwrap,
    value_nbytes,
    wrap_payload,
)
from repro.runtime.values import NULL, MultiValue, OperatorValue


class TestDataBlock:
    def test_fresh_block_has_zero_refs(self):
        assert DataBlock([1, 2]).rc == 0

    def test_unique_iff_rc_one(self):
        block = DataBlock([1])
        block.rc = 1
        assert block.unique()
        block.rc = 2
        assert not block.unique()

    def test_copy_isolates_list_payload(self):
        block = DataBlock([1, [2]])
        clone = block.copy()
        clone.payload[1].append(3)
        assert block.payload == [1, [2]]

    def test_copy_isolates_numpy_payload(self):
        block = DataBlock(np.zeros(4))
        clone = block.copy()
        clone.payload[0] = 9.0
        assert block.payload[0] == 0.0

    def test_copy_starts_unreferenced(self):
        block = DataBlock([1])
        block.rc = 5
        assert block.copy().rc == 0

    def test_nbytes_numpy_exact(self):
        assert DataBlock(np.zeros(10, dtype=np.float64)).nbytes == 80


class TestRetainRelease:
    def test_retain_release_block(self):
        block = DataBlock([1])
        retain(block, 3)
        assert block.rc == 3
        release(block, 2)
        assert block.rc == 1

    def test_retain_recurses_into_multivalue(self):
        a, b = DataBlock([1]), DataBlock([2])
        mv = MultiValue((a, 5, b))
        retain(mv, 2)
        assert a.rc == 2 and b.rc == 2

    def test_nested_multivalue(self):
        a = DataBlock([1])
        mv = MultiValue((MultiValue((a,)),))
        retain(mv)
        assert a.rc == 1

    def test_retain_zero_is_noop(self):
        block = DataBlock([1])
        retain(block, 0)
        assert block.rc == 0

    def test_negative_rc_raises_runtime_error(self):
        # A real error, not an assert: must fire even under ``python -O``.
        block = DataBlock([1])
        with pytest.raises(RuntimeError, match="went negative"):
            release(block, 1)

    def test_negative_rc_restores_count(self):
        block = DataBlock([1])
        retain(block, 1)
        with pytest.raises(RuntimeError):
            release(block, 2)
        assert block.rc == 1  # the failed release must not corrupt rc

    def test_negative_rc_inside_multivalue(self):
        a = DataBlock([1])
        retain(a, 1)
        mv = MultiValue((a,))
        with pytest.raises(RuntimeError):
            release(mv, 2)

    def test_scalars_ignored(self):
        retain(42, 3)
        release("s", 0)
        retain(NULL, 2)  # must not raise


class TestWrapPayload:
    def test_immutable_atoms_pass_through(self):
        for value in (1, 2.5, "s", b"b", True, None):
            assert wrap_payload(value) is value

    def test_numpy_scalar_passes_through(self):
        v = np.float64(1.5)
        assert wrap_payload(v) is v

    def test_mutable_payloads_wrapped(self):
        for payload in ([1], {"a": 1}, np.zeros(3), bytearray(b"x")):
            wrapped = wrap_payload(payload)
            assert isinstance(wrapped, DataBlock)
            assert wrapped.payload is payload

    def test_tuple_becomes_multivalue(self):
        wrapped = wrap_payload((1, [2], "x"))
        assert isinstance(wrapped, MultiValue)
        assert wrapped.items[0] == 1
        assert isinstance(wrapped.items[1], DataBlock)

    def test_existing_wrappers_pass_through(self):
        block = DataBlock([1])
        assert wrap_payload(block) is block
        mv = MultiValue((1,))
        assert wrap_payload(mv) is mv
        op = OperatorValue("f")
        assert wrap_payload(op) is op
        assert wrap_payload(NULL) is NULL

    def test_home_recorded(self):
        assert wrap_payload([1], home=3).home == 3


class TestUnwrap:
    def test_block_unwraps_to_payload(self):
        payload = [1, 2]
        assert unwrap(DataBlock(payload)) is payload

    def test_multivalue_unwraps_to_tuple(self):
        mv = MultiValue((DataBlock([1]), 5))
        assert unwrap(mv) == ([1], 5)

    def test_atoms_unchanged(self):
        assert unwrap(7) == 7
        assert unwrap(NULL) is NULL


class TestBufferPool:
    def test_round_trip_same_shape_dtype(self):
        pool = BufferPool()
        arr = np.ascontiguousarray(
            np.arange(6, dtype=np.float64).reshape(2, 3)
        ).copy()
        assert pool.put(arr)
        got = pool.get((2, 3), np.float64)
        assert got is arr
        assert pool.stats()["recycled"] == 1
        assert pool.stats()["recycled_bytes"] == arr.nbytes

    def test_get_miss_returns_none(self):
        pool = BufferPool()
        pool.put(np.zeros((2, 3)))
        assert pool.get((3, 2), np.float64) is None
        assert pool.get((2, 3), np.float32) is None

    def test_views_rejected(self):
        pool = BufferPool()
        arr = np.zeros((4, 4))
        assert not pool.put(arr[1:])
        assert pool.stats()["dropped"] == 1

    def test_non_contiguous_rejected(self):
        pool = BufferPool()
        assert not pool.put(np.zeros((4, 4)).T.copy(order="F"))

    def test_empty_rejected(self):
        pool = BufferPool()
        assert not pool.put(np.zeros((0,)))

    def test_non_array_rejected(self):
        pool = BufferPool()
        assert not pool.put([1, 2, 3])

    def test_capacity_bound(self):
        pool = BufferPool(max_bytes=100)
        assert pool.put(np.zeros(10))  # 80 bytes held
        assert not pool.put(np.zeros(10))  # would exceed 100
        assert pool.stats()["held_bytes"] == 80
        assert pool.stats()["dropped"] == 1

    def test_held_bytes_tracks_get(self):
        pool = BufferPool()
        pool.put(np.zeros(10))
        pool.get((10,), np.float64)
        assert pool.stats()["held_bytes"] == 0


class TestSizes:
    def test_payload_nbytes_containers(self):
        assert payload_nbytes([np.zeros(10)]) > 80

    def test_value_nbytes_multivalue_sums(self):
        mv = MultiValue((DataBlock(np.zeros(10)), DataBlock(np.zeros(5))))
        assert value_nbytes(mv) == 120

    def test_value_nbytes_closure_is_small(self):
        assert value_nbytes(OperatorValue("x")) == 16

    def test_copy_payload_deepcopies_objects(self):
        class Thing:
            def __init__(self):
                self.data = [1]

        thing = Thing()
        clone = copy_payload(thing)
        clone.data.append(2)
        assert thing.data == [1]
