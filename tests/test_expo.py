"""Metrics exposition: Prometheus rendering and the scrape endpoint."""

import json
import urllib.request

from repro import compile_source
from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    RunContext,
    attach_metrics,
    render_prometheus,
    validate_prometheus_text,
)
from repro.obs.expo import NAMESPACE
from repro.runtime import SequentialExecutor

from tests.conftest import FIB_SRC


def _populated_registry():
    reg = MetricsRegistry()
    c = reg.counter("tasks_fired")
    c.inc()
    c.inc(label="convolve")
    reg.gauge("queue_depth").set(3)
    g = reg.gauge("arena/segments")
    g.set(2)
    h = reg.histogram("op_seconds/convolve", bounds=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.005, 0.05, 0.5):
        h.observe(v)
    return reg


def _run_registry():
    from repro.obs import EventBus

    bus = EventBus()
    reg = attach_metrics(bus)
    compiled = compile_source(FIB_SRC)
    SequentialExecutor(bus=bus).run(compiled.graph, args=(10,))
    return reg


class TestRendering:
    def test_families_prefixed_and_typed(self):
        text = render_prometheus(_populated_registry())
        assert f"# TYPE {NAMESPACE}_tasks_fired counter" in text
        assert f"{NAMESPACE}_tasks_fired 2" in text
        # Per-label attribution lives in its own family.
        assert (
            f'{NAMESPACE}_tasks_fired_by_label{{label="convolve"}} 1'
            in text
        )
        # Gauges carry a high-water twin.
        assert f"{NAMESPACE}_queue_depth 3" in text
        assert f"{NAMESPACE}_queue_depth_high 3" in text
        # Slash-named gauges become a key label.
        assert f'{NAMESPACE}_arena{{key="segments"}} 2' in text

    def test_histogram_buckets_cumulative(self):
        text = render_prometheus(_populated_registry())
        assert f'{NAMESPACE}_op_seconds_bucket{{key="convolve",le="0.001"}} 1' in text
        assert f'{NAMESPACE}_op_seconds_bucket{{key="convolve",le="0.01"}} 2' in text
        assert f'{NAMESPACE}_op_seconds_bucket{{key="convolve",le="0.1"}} 3' in text
        assert f'{NAMESPACE}_op_seconds_bucket{{key="convolve",le="+Inf"}} 4' in text
        assert f'{NAMESPACE}_op_seconds_count{{key="convolve"}} 4' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert validate_prometheus_text("") == []

    def test_real_run_registry_validates(self):
        # Acceptance half 1: what a run actually produces is valid text.
        reg = _run_registry()
        text = render_prometheus(reg)
        assert text
        assert validate_prometheus_text(text) == []
        assert f"{NAMESPACE}_tasks_fired" in text

    def test_to_prometheus_convenience(self):
        reg = _populated_registry()
        assert reg.to_prometheus() == render_prometheus(reg)


class TestValidator:
    def test_flags_malformed_sample(self):
        problems = validate_prometheus_text("not a metric line!!\n")
        assert problems and "malformed" in problems[0]

    def test_flags_missing_type(self):
        problems = validate_prometheus_text("delirium_x 1\n")
        assert problems and "no TYPE" in problems[0]

    def test_flags_non_cumulative_buckets(self):
        bad = (
            "# TYPE delirium_h histogram\n"
            'delirium_h_bucket{le="0.1"} 5\n'
            'delirium_h_bucket{le="1"} 3\n'
        )
        problems = validate_prometheus_text(bad)
        assert any("cumulative" in p for p in problems)

    def test_accepts_rendered_output(self):
        assert validate_prometheus_text(
            render_prometheus(_populated_registry())
        ) == []


class TestServer:
    def test_scrape_endpoint(self):
        # Acceptance half 2: a live HTTP scrape returns valid 0.0.4 text.
        reg = _run_registry()
        server = MetricsServer(reg, port=0).start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics", timeout=10
            ) as resp:
                assert resp.status == 200
                assert "version=0.0.4" in resp.headers["Content-Type"]
                body = resp.read().decode()
        finally:
            server.stop()
        assert validate_prometheus_text(body) == []
        assert f"{NAMESPACE}_tasks_fired" in body

    def test_healthz_and_404(self):
        server = MetricsServer(MetricsRegistry(), port=0).start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/healthz", timeout=10
            ) as resp:
                assert resp.status == 200
                doc = json.loads(resp.read())
                assert doc["status"] == "ok"
            try:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=10
                )
                raised = False
            except urllib.error.HTTPError as err:
                raised = err.code == 404
            assert raised
        finally:
            server.stop()

    def test_run_context_serves_its_own_registry(self, tmp_path):
        ctx = RunContext("served", flightrec_dir=str(tmp_path))
        compiled = compile_source(FIB_SRC)
        SequentialExecutor(run_ctx=ctx).run(compiled.graph, args=(8,))
        server = ctx.serve_metrics(port=0)
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
                body = r.read().decode()
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as r:
                health = json.loads(r.read())
        finally:
            server.stop()
        assert validate_prometheus_text(body) == []
        assert health["run_id"] == "served"
        assert health["executor"] == "sequential"

    def test_context_manager_and_stop_idempotent(self):
        server = MetricsServer(MetricsRegistry(), port=0)
        with server as s:
            assert s.port > 0
        server.stop()  # second stop is a no-op
