"""Setup shim: lets `pip install -e .` work on environments whose
setuptools lacks the `wheel` package (legacy editable install path)."""
from setuptools import setup

setup()
