"""Section 7: templates dominate runtime memory; replication pays.

Paper: "Since the templates do not change at runtime, they can be
replicated in the local memory of each processor.  As templates represent
over 80% of the memory used by the runtime system at a given time, this
organization reduces traffic on the Sequent and Cray busses and on the
Butterfly network."

Two measurements:

* the memory inventory of real runs (template bytes vs peak activation
  bytes) — the 80% claim;
* simulated interconnect traffic and makespan with template replication
  on vs off (off = every expansion fetches its template across the bus).
"""

import dataclasses

import pytest

from repro.apps.queens import compile_queens
from repro.apps.retina import RetinaConfig, compile_retina
from repro.machine import SimulatedExecutor, butterfly, sequent


def test_templates_dominate_runtime_memory(benchmark, report):
    compiled = compile_retina(2, RetinaConfig())
    result = benchmark(
        lambda: SimulatedExecutor(sequent(3)).run(
            compiled.graph, registry=compiled.registry
        )
    )
    mem = result.memory
    rows = [
        mem.describe(),
        "",
        "(paper: 'templates represent over 80% of the memory used by the",
        " runtime system at a given time')",
    ]
    report("Section 7 — runtime memory inventory (retina, Sequent P=3)",
           "\n".join(rows))
    assert mem.template_fraction > 0.8


def test_queens_inventory_is_the_contrast_case(report):
    """Recursion-heavy search is the adversarial case: the live-activation
    frontier can outweigh the (tiny) templates.  The priority scheme is
    what keeps that footprint in check — measured here as activation bytes
    with the scheme on vs off."""
    compiled = compile_queens(6)
    with_p = SimulatedExecutor(sequent(3)).run(
        compiled.graph, registry=compiled.registry
    )
    without = SimulatedExecutor(sequent(3), use_priorities=False).run(
        compiled.graph, registry=compiled.registry
    )
    report(
        "Section 7 — memory inventory, the recursion-heavy contrast case",
        f"with priorities:    {with_p.memory.describe()}\n"
        f"without priorities: {without.memory.describe()}\n"
        "(templates dominate for the paper's applications — see the retina\n"
        " inventory above — while unbounded recursion is what the priority\n"
        " scheme exists to contain)",
    )
    assert with_p.value == without.value
    assert (
        with_p.memory.peak_activation_total
        <= without.memory.peak_activation_total
    )


@pytest.mark.parametrize(
    "machine_factory,name", [(sequent, "sequent"), (butterfly, "butterfly")]
)
def test_replication_cuts_interconnect_traffic(machine_factory, name, report):
    compiled = compile_queens(5)
    machine = machine_factory(4) if name == "butterfly" else machine_factory(3)
    replicated = SimulatedExecutor(machine).run(
        compiled.graph, registry=compiled.registry
    )
    shared = SimulatedExecutor(
        dataclasses.replace(machine, replicate_templates=False)
    ).run(compiled.graph, registry=compiled.registry)
    assert replicated.value == shared.value

    rows = [
        f"{'':<28}{'replicated':>12}{'shared':>12}",
        f"{'template fetch bytes':<28}"
        f"{replicated.traffic.template_fetch_bytes:>12}"
        f"{shared.traffic.template_fetch_bytes:>12}",
        f"{'interconnect bytes':<28}"
        f"{replicated.traffic.interconnect_bytes:>12}"
        f"{shared.traffic.interconnect_bytes:>12}",
        f"{'makespan (ticks)':<28}"
        f"{replicated.ticks:>12.0f}{shared.ticks:>12.0f}",
    ]
    report(
        f"Section 7 — template replication ablation ({name})",
        "\n".join(rows),
    )
    assert replicated.traffic.template_fetch_bytes == 0
    assert shared.traffic.template_fetch_bytes > 0
    assert shared.ticks > replicated.ticks
