"""Table 1: per-pass compile times, sequential vs three Sequent processors.

Paper (msec): Lexing 91/91, Parsing 200/78, Macro Expansion 117/50,
Env Analysis 300/120, Optimization 350/160, Graph Conversion 380/160;
totals 1438/659 (~2.2x), per-pass speedups between two and three.
Sequential ticks are calibrated to the paper's sequential column (the cost
model's anchor); the parallel column is measured from the simulated
schedule.
"""

import pytest

from repro.apps.compiler_app import run_table1
from repro.tools import pass_table

PAPER = {
    "Lexing": (91, 91),
    "Parsing": (200, 78),
    "Macro Expansion": (117, 50),
    "Env Analysis": (300, 120),
    "Optimization": (350, 160),
    "Graph Conversion": (380, 160),
}


@pytest.fixture(scope="module")
def table():
    return run_table1(n_functions=48, seed=1990)


def test_table1_parallel_compiler(benchmark, table, report):
    benchmark(lambda: run_table1(n_functions=16, seed=3))
    body = [pass_table(table.sequential, table.parallel, table.n_processors)]
    body.append("")
    body.append("paper (msec):    " + "  ".join(
        f"{name}: {seq}/{par}" for name, (seq, par) in PAPER.items()
    ))
    report("Table 1 — The Parallel Compiler (on a simulated Sequent)",
           "\n".join(body))

    # Shape: lexing sequential; per-pass speedup in [2, 3]; total ~2.2.
    speedups = table.per_pass_speedup()
    assert speedups["Lexing"] == pytest.approx(1.0, abs=0.01)
    for name, s in speedups.items():
        if name != "Lexing":
            assert 2.0 <= s <= 3.0, (name, s)
    assert table.overall_speedup == pytest.approx(2.2, abs=0.35)
