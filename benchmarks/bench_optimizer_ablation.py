"""Section 6 ablation: what each Pythia optimization buys at run time.

Paper: "Unnecessary nodes in the graph translate into extra overhead at
run-time, so the compiler uses a number of optimization techniques to
improve the output" — constant propagation, CSE, dead-code elimination,
inline function expansion.

The ablation compiles a glue-heavy program (small helper functions,
repeated scalar subexpressions, dead bindings — the shape of real
coordination code) with each pass configuration, then measures graph
nodes, run-time expansions, and simulated ticks on a fine-grained machine
where engine overhead is visible.  Results are identical under every
configuration (semantics preservation is also property-tested).
"""

import pytest

from repro import compile_source, default_registry
from repro.machine import MachineModel, SimulatedExecutor

#: Glue-heavy source: helpers worth inlining, duplicate subexpressions,
#: dead bindings, and constants to fold.
SOURCE = """
main(n)
  let scale  = mul(4, 8)
      unused = mul(add(n, scale), 9)
      e1 = mul(add(n, 7), 3)
      e2 = mul(add(n, 7), 3)
      a = helper(add(n, scale))
      b = helper(add(n, scale))
      c = step(step(step(a)))
      d = combine(a, b)
  in add(combine(c, combine(d, helper(n))), add(e1, e2))

helper(x) add(mul(x, 2), 1)
step(x) helper(incr(x))
combine(x, y) add(add(x, y), 1)
"""

#: Fine-grained machine: engine node costs are visible next to operators.
MACHINE = MachineModel(
    name="fine",
    processors=2,
    dispatch_ticks=10.0,
    node_overhead_ticks=5.0,
    activation_ticks=40.0,
    default_op_ticks=50.0,
)

CONFIGS = {
    "no optimization": (),
    "constprop only": ("constprop",),
    "cse only": ("cse",),
    "dce only": ("dce",),
    "inline only": ("inline",),
    "fuse only": ("fuse",),
    "all four": ("inline", "constprop", "cse", "dce"),
    "all four + fuse": ("inline", "constprop", "cse", "dce", "fuse"),
}


@pytest.fixture(scope="module")
def results():
    out = {}
    for label, passes in CONFIGS.items():
        compiled = compile_source(
            SOURCE, registry=default_registry(), optimize_passes=passes
        )
        sim = SimulatedExecutor(MACHINE).run(compiled.graph, args=(3,))
        out[label] = {
            "nodes": compiled.graph.total_nodes(),
            "expansions": sim.stats.expansions,
            "ops": sim.stats.ops_executed,
            "ticks": sim.ticks,
            "value": sim.value,
        }
    return out


def test_optimizer_ablation(benchmark, results, report):
    compiled = compile_source(SOURCE, registry=default_registry())
    benchmark(
        lambda: SimulatedExecutor(MACHINE).run(compiled.graph, args=(3,))
    )
    rows = [
        f"{'configuration':<18}{'graph nodes':>12}{'expansions':>11}"
        f"{'operators':>10}{'ticks':>10}"
    ]
    for label, r in results.items():
        rows.append(
            f"{label:<18}{r['nodes']:>12}{r['expansions']:>11}"
            f"{r['ops']:>10}{r['ticks']:>10.0f}"
        )
    report("Section 6 — optimizer ablation (fine-grained machine)",
           "\n".join(rows))

    # Semantics preserved everywhere.
    values = {r["value"] for r in results.values()}
    assert len(values) == 1

    base = results["no optimization"]
    full = results["all four"]
    # Inlining kills call-closure expansions; the scalar passes kill
    # nodes and operator executions; together the graph is much smaller
    # and the run much faster.
    assert results["inline only"]["expansions"] < base["expansions"]
    assert results["dce only"]["nodes"] < base["nodes"]
    assert full["nodes"] < 0.8 * base["nodes"]
    assert full["ops"] < base["ops"]
    assert full["ticks"] < 0.75 * base["ticks"]
    # Fusion stacks on the scalar passes: fewer graph nodes and fewer
    # operator firings than "all four" alone, same result.
    fused = results["all four + fuse"]
    assert fused["nodes"] < full["nodes"]
    assert fused["ops"] < full["ops"]
    assert results["fuse only"]["nodes"] < base["nodes"]


def test_each_single_pass_preserves_semantics(results):
    values = {label: r["value"] for label, r in results.items()}
    assert len(set(values.values())) == 1, values
