"""Section 3: parallel recursive backtracking (eight queens).

The paper uses the program to show that Delirium expresses parallel
backtracking compactly and that "a tremendous degree of parallelism is
exposed."  This benchmark measures that: solution correctness (92 for
N=8), the speedup of the search tree on a simulated Cray-2, and the
copy-on-write behaviour of the shared boards.
"""

import pytest

from repro.apps.queens import SOLUTION_COUNTS, compile_queens, solve_sequential
from repro.machine import SimulatedExecutor, cray_2
from repro.runtime import SequentialExecutor


@pytest.fixture(scope="module")
def compiled8():
    return compile_queens(8)


def test_eight_queens_finds_92_solutions(benchmark, compiled8, report):
    result = benchmark(
        lambda: SequentialExecutor().run(
            compiled8.graph, registry=compiled8.registry
        )
    )
    rows = [
        f"solutions: {len(result.value)} (expected {SOLUTION_COUNTS[8]})",
        f"operators executed: {result.stats.ops_executed}",
        f"subgraph expansions: {result.stats.expansions} "
        f"({result.stats.tail_expansions} tail)",
        f"board copy-on-writes: {result.stats.cow_copies}, "
        f"in-place: {result.stats.in_place_writes}",
    ]
    report("Section 3 — eight queens under Delirium", "\n".join(rows))
    assert len(result.value) == 92
    assert result.value == solve_sequential(8)


def test_queens_search_tree_scales(report):
    compiled = compile_queens(6)
    times = {}
    for p in (1, 2, 4, 8, 16):
        times[p] = SimulatedExecutor(cray_2(p)).run(
            compiled.graph, registry=compiled.registry
        ).ticks
    rows = [
        f"P={p:<3} speedup {times[1] / t:>6.2f}" for p, t in times.items()
    ]
    report("Section 3 — 6-queens speedup on simulated Cray-2", "\n".join(rows))
    assert times[1] / times[4] > 3.0
    assert times[1] / times[16] > 6.0


def test_queens_operator_line_count(report):
    """Paper: 'roughly 100 lines of C' for the operators; the coordination
    framework itself fits on a page."""
    import inspect

    from repro.apps.queens import operators, programs

    op_lines = len(inspect.getsource(operators.make_registry).splitlines())
    framework_lines = len(
        [l for l in programs.PAPER_EIGHT_QUEENS.splitlines() if l.strip()]
    )
    report(
        "Section 3 — code sizes",
        f"operator module: ~{op_lines} lines of Python "
        "(paper: ~100 lines of C)\n"
        f"coordination framework: {framework_lines} lines of Delirium",
    )
    assert framework_lines < 30
