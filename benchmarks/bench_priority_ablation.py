"""Section 7: the three-level priority ready queue, ablated.

Paper: "The priority scheme reduces the number of template activations
required to evaluate a Delirium program, by making activations available
for re-use as early as possible" — and section 3 warns that eight queens
"might lead to an unwieldy explosion of schedulable operators without the
priority execution scheme."

The ablation runs N-queens with the scheme on and off (flat FIFO) and
reports peak live activations, allocations, and the implied activation
memory.  Results are identical either way — only the resource footprint
changes.
"""

import pytest

from repro.apps.queens import compile_queens, solve_sequential
from repro.machine.memory import activation_bytes
from repro.runtime import SequentialExecutor


@pytest.fixture(scope="module")
def compiled():
    return compile_queens(7)


def _run(compiled, use_priorities: bool):
    return SequentialExecutor(use_priorities=use_priorities).run(
        compiled.graph, registry=compiled.registry
    )


def _activation_memory(compiled, peak_by_template):
    return sum(
        count * activation_bytes(compiled.graph.templates[name])
        for name, count in peak_by_template.items()
    )


def test_priority_scheme_bounds_activations(benchmark, compiled, report):
    with_priorities = benchmark(lambda: _run(compiled, True))
    flat_fifo = _run(compiled, False)
    assert with_priorities.value == flat_fifo.value == solve_sequential(7)

    rows = [
        f"{'':<26}{'priorities':>12}{'flat FIFO':>12}",
    ]
    for label, a, b in (
        (
            "peak live activations",
            with_priorities.stats.activation_stats["peak_live"],
            flat_fifo.stats.activation_stats["peak_live"],
        ),
        (
            "activations allocated",
            with_priorities.stats.activation_stats["created"],
            flat_fifo.stats.activation_stats["created"],
        ),
        (
            "activations reused",
            with_priorities.stats.activation_stats["reused"],
            flat_fifo.stats.activation_stats["reused"],
        ),
    ):
        rows.append(f"{label:<26}{a:>12}{b:>12}")
    ratio = (
        flat_fifo.stats.activation_stats["peak_live"]
        / with_priorities.stats.activation_stats["peak_live"]
    )
    rows.append(f"peak-footprint ratio: {ratio:.1f}x")
    report("Section 7 — priority-scheme ablation (7-queens)", "\n".join(rows))

    assert ratio > 2.0
    assert (
        with_priorities.stats.activation_stats["created"]
        < flat_fifo.stats.activation_stats["created"]
    )


def test_priorities_do_not_change_results_or_work(compiled):
    a = _run(compiled, True)
    b = _run(compiled, False)
    assert a.value == b.value
    assert a.stats.ops_executed == b.stats.ops_executed
    assert a.stats.expansions == b.stats.expansions
