"""Table 2: the coordination-model comparison, made executable.

The paper's table is a taxonomy (model + notation per language).  We print
the taxonomy and then *measure* the property the Delirium row claims and
the others cannot: run the same floating-point reduction workload under

* Delirium's restricted-shared-data model (the compiled fork-join tree),
* a uniform-shared-memory model with locks (embedded primitives), and
* a Linda-style tuple space with replicated workers (embedded primitives),

across many scheduling seeds.  Delirium yields exactly one result;
the baselines' results depend on execution order (float association
follows the interleaving), which is precisely why section 8 calls
determinism the model's most important property.
"""

import pytest

from repro import compile_source, default_registry
from repro.compare import lock_based_sum, replicated_worker_sum
from repro.machine import SimulatedExecutor, sequent
from repro.runtime import SequentialExecutor

#: Magnitude-mixed items: float addition over these is order sensitive.
ITEMS = [0.1 * (10 ** (i % 6)) for i in range(40)]

TAXONOMY = """\
Language            Coordination Model       Notation
Delirium            restricted shared data   embedding
ADA                 rendezvous               embedded
OCCAM               protocol                 embedded
RPC                 protocol                 embedded
Linda               shared database          embedded
Concurrent Prolog   shared variables         radical
ALFL                shared data              radical
Enhanced Fortran/C  task-oriented            embedded
Emerald/Sloop       protocol                 embedded"""


def _delirium_sum_program():
    """Pairwise tree reduction expressed as a Delirium framework."""
    reg = default_registry()

    @reg.register(name="item", pure=True, cost=5.0)
    def item(i):
        return ITEMS[i]

    @reg.register(name="fadd", pure=True, cost=10.0)
    def fadd(a, b):
        return a + b

    def tree(lo: int, hi: int) -> str:
        if hi - lo == 1:
            return f"item({lo})"
        mid = (lo + hi) // 2
        return f"fadd({tree(lo, mid)}, {tree(mid, hi)})"

    source = f"main() {tree(0, len(ITEMS))}"
    return compile_source(source, registry=reg), reg


SEEDS = range(10)


@pytest.fixture(scope="module")
def delirium_results():
    compiled, reg = _delirium_sum_program()
    out = set()
    for seed in SEEDS:
        out.add(
            SequentialExecutor(seed=seed)
            .run(compiled.graph, registry=reg)
            .value
        )
        out.add(
            SimulatedExecutor(sequent(3), seed=seed)
            .run(compiled.graph, registry=reg)
            .value
        )
    return out


def test_table2_model_comparison(benchmark, delirium_results, report):
    lock_results = {lock_based_sum(ITEMS, seed=s) for s in SEEDS}
    linda_results = {replicated_worker_sum(ITEMS, seed=s) for s in SEEDS}
    benchmark(lambda: lock_based_sum(ITEMS, seed=1))

    body = [
        TAXONOMY,
        "",
        "measured: distinct results of one float reduction over "
        f"{len(SEEDS)} scheduling seeds",
        f"  Delirium (restricted shared data): "
        f"{len(delirium_results)} distinct value(s)",
        f"  shared memory + locks (embedded):  "
        f"{len(lock_results)} distinct value(s)",
        f"  Linda tuple space (embedded):      "
        f"{len(linda_results)} distinct value(s)",
    ]
    report("Table 2 — Coordination Model Comparison", "\n".join(body))

    assert len(delirium_results) == 1, "Delirium must be deterministic"
    assert len(lock_results) > 1, "lock model should expose ordering"
    assert len(linda_results) > 1, "tuple-space model should expose ordering"


def test_table2_all_models_agree_approximately(report):
    """The models disagree only in rounding: same math, different orders."""
    reference = sum(ITEMS)
    assert lock_based_sum(ITEMS, seed=0) == pytest.approx(reference, rel=1e-9)
    assert replicated_worker_sum(ITEMS, seed=0) == pytest.approx(
        reference, rel=1e-9
    )
    compiled, reg = _delirium_sum_program()
    value = SequentialExecutor().run(compiled.graph, registry=reg).value
    assert value == pytest.approx(reference, rel=1e-9)
