"""Section 9.1/9.2: static decomposition vs dynamic load balancing.

Section 9.1 concedes that the replicated-worker model — a queue of tasks
drained by identical workers — "would be clumsy and inefficient" inside
Delirium's restricted model, and 9.2 that hard-wired splits "cannot take
into account the load of the system."  The flip side the paper leans on:
when the decomposition is *fine enough*, the runtime's greedy ready-queue
scheduling IS dynamic load balancing, with determinism intact.

Measured here on a batch of tasks with highly irregular sizes:

* **static 4-way split** (the paper's idiom): each of four bites gets a
  fixed quarter of the tasks — the unlucky bite serializes the batch;
* **one operator per task** via the prelude's ``par_index_map``: the
  runtime packs ready tasks onto idle processors greedily, approaching
  the dynamic-queue makespan of a replicated-worker system — without
  giving up determinism (the Linda baseline's *results* vary by seed,
  see Table 2).
"""

from repro import compile_source, default_registry
from repro.machine import SimulatedExecutor, uniform

#: Irregular task costs (ticks): one giant, a few medium, many small.
TASK_COSTS = [800_000.0, 90_000.0, 60_000.0] + [20_000.0] * 29
N_TASKS = len(TASK_COSTS)


def _registry():
    reg = default_registry()

    @reg.register(
        name="task", pure=True, cost=lambda i: TASK_COSTS[i]
    )
    def task(i):
        return i * 3 + 1

    @reg.register(
        name="quarter",
        pure=True,
        cost=lambda base: sum(
            TASK_COSTS[base : base + N_TASKS // 4]
        ),
    )
    def quarter(base):
        return sum(i * 3 + 1 for i in range(base, base + N_TASKS // 4))

    return reg


def static_program():
    reg = _registry()
    q = N_TASKS // 4
    src = f"""
    main()
      let g0 = quarter(0)
          g1 = quarter({q})
          g2 = quarter({2 * q})
          g3 = quarter({3 * q})
      in add(add(g0, g1), add(g2, g3))
    """
    return compile_source(src, registry=reg), reg


def dynamic_program():
    reg = _registry()
    compiled = compile_source(
        f"main() par_reduce(add, task, 0, {N_TASKS})",
        registry=reg,
        prelude=True,
    )
    return compiled, reg


def test_fine_decomposition_recovers_dynamic_balance(benchmark, report):
    static, static_reg = static_program()
    dynamic, dynamic_reg = dynamic_program()
    machine = uniform(4)

    static_result = SimulatedExecutor(machine).run(
        static.graph, registry=static_reg
    )
    dynamic_result = benchmark(
        lambda: SimulatedExecutor(machine).run(
            dynamic.graph, registry=dynamic_reg
        )
    )
    assert static_result.value == dynamic_result.value

    total = sum(TASK_COSTS)
    ideal = max(total / 4, max(TASK_COSTS))
    rows = [
        f"{'variant':<28}{'makespan':>12}{'vs ideal':>10}",
        f"{'static 4-way split':<28}{static_result.ticks:>12.0f}"
        f"{static_result.ticks / ideal:>10.2f}",
        f"{'per-task (par_index_map)':<28}{dynamic_result.ticks:>12.0f}"
        f"{dynamic_result.ticks / ideal:>10.2f}",
        "",
        f"ideal makespan max(work/4, biggest task) = {ideal:.0f}",
        "fine-grain decomposition lets the greedy ready queue balance the",
        "irregular batch (section 9.1's replicated-worker effect) while",
        "keeping Delirium's determinism.",
    ]
    report("Section 9.1/9.2 — static split vs dynamic balance", "\n".join(rows))

    # The unlucky static bite holds a quarter of the tasks including the
    # giant; per-task decomposition lands near the ideal.
    assert static_result.ticks > 1.10 * dynamic_result.ticks
    assert dynamic_result.ticks < 1.25 * ideal


def test_determinism_retained_under_dynamic_balance():
    dynamic, reg = dynamic_program()
    values = {
        SimulatedExecutor(uniform(4), seed=s)
        .run(dynamic.graph, registry=reg)
        .value
        for s in range(5)
    }
    assert len(values) == 1
