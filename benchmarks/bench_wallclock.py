"""Real wall-clock speedup: retina + montecarlo on the real executors.

Every other benchmark in this directory reproduces the paper's *simulated*
evaluation; this one is the real entry in the perf trajectory.  Two
workloads:

**Retina** (v2, the balanced decomposition of section 5.2) at a
production-ish size:

* sequential, unfused — the PR 2 configuration, for continuity;
* sequential, fused — the operator-fusion + fast-path configuration;
* sequential, fused + donated — the zero-copy memory path (last-use
  donation + buffer pooling), which must avoid copies without changing a
  bit of the result;
* sequential, fused + donated + codegen — the recipes lowered to
  generated specialized Python; the configuration that must push the
  master-overhead fraction below the 0.10 target;
* ProcessExecutor at 1/2/4 workers on the fused+donated+codegen graph,
  with the dispatch policy calibrated from measured per-operator wall
  costs (:func:`repro.machine.calibrate_dispatch_cached`, served from
  the persisted per-machine table when one exists) so sub-IPC-cost
  operators never cross the process boundary.  The calibration decision
  is committed alongside the timings.

**Monte-Carlo π** (section 9.2 prelude, ``par_reduce``): the
coarse-grained counterpart — a few hundred-millisecond batches whose
static cost hints clear the dispatch bar, the shape the process executor
exists for.  The process rows run with batched execution on (the
default) plus one explicit unbatched 1-worker row, and each row records
its IPC accounting (``ipc_messages``, ``ipc_per_fire``) — the batching
PR is judged on the 1-worker pair: wall clock down >= 25% on the
committed baseline and IPC messages per dispatched fire down >= 4x.
Parallel *speedup* expectations are gated on ``cpu_count > 1``; the IPC
drop needs no second CPU and is asserted everywhere, as is batched <=
unbatched.  The absolute >= 25% gate is additionally regime-checked: the
shared host throttles in phases (exactly 2x on the pure NumPy kernel),
so it only fires when the run's own sequential time is within
``MC_REGIME_TOLERANCE`` of the committed sequential baseline.

For each sequential configuration an instrumented pass (the engine's
``profile_ops`` probe — two bare clock reads per operator firing) splits
the wall clock into *operator body time* and *master overhead* (engine
dispatch: readiness bookkeeping, queue traffic, value wrapping), and a
separate memory pass (``BlockAllocated`` subscriber under
``observe_blocks``) counts allocations and copies — the per-phase
breakdown that shows what fusion, the fast path, and donation actually
buy.

Results always go to ``BENCH_wallclock.json`` next to the repository root
(the committed perf record, one top-level key per workload, with host CPU
count so entries from different machines stay interpretable), and
additionally to ``--bench-json FILE`` when given.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.apps.montecarlo.coordination import compile_pi
from repro.apps.retina import RetinaConfig, compile_retina
from repro.machine import calibrate_dispatch_cached
from repro.obs import (
    BlockAllocated,
    EventBus,
    RunContext,
    observe_blocks,
)
from repro.obs.critpath import RECONCILIATION_TOLERANCE
from repro.runtime import ProcessExecutor, SequentialExecutor

#: >= the 128x128 floor from the acceptance criteria; kernel and
#: iteration count sized so operator compute dominates dispatch overhead.
CONFIG = RetinaConfig(height=256, width=256, kernel_size=13, num_iter=4)
WORKER_COUNTS = (1, 2, 4)
REPEATS = 2

#: The phase split divides a ~4 ms overhead by a ~40 ms wall clock, so a
#: single noisy repeat moves the fraction by whole points; the
#: instrumented probe is cheap (sequential, no subscribers), so it earns
#: a deeper best-of than the headline timings.
PROBE_REPEATS = 9

#: Monte-Carlo shape: batches big enough that one batch (~10 ms) dwarfs
#: an IPC round trip, few enough that the benchmark stays quick.
MC_BATCHES = 16
MC_BATCH_SIZE = 200_000

#: The batching PR's baselines: the previously committed process
#: 1-worker wall clock for this workload, which the batched path must
#: beat by >= MC_BATCH_IMPROVEMENT, and the minimum factor by which IPC
#: messages per dispatched fire must drop.
MC_BASELINE_PROCESS1_SECONDS = 0.05075
MC_BATCH_IMPROVEMENT = 0.25
MC_IPC_DROP_FACTOR = 4.0

#: The committed *sequential* seconds for the same workload, used as a
#: host-regime probe: the absolute wall-clock assertion compares this
#: run's numbers against a baseline recorded on the same host in its
#: normal regime, and the shared CI host visibly throttles in phases
#: (the pure NumPy kernel slows by exactly 2x with load average ~0).  A
#: throttled run can still prove the *relative* wins — the IPC drop and
#: batched <= unbatched — so those are asserted unconditionally, and the
#: absolute >= 25% gate is skipped when the run's own sequential time
#: shows the host outside MC_REGIME_TOLERANCE of the committed regime.
MC_BASELINE_SEQUENTIAL_SECONDS = 0.03558
MC_REGIME_TOLERANCE = 1.25

#: The headline batched row earns a deeper best-of than the survey rows:
#: it carries the acceptance assertion, and a 1-CPU host's scheduler can
#: inflate (never deflate) any single repeat.
MC_HEADLINE_REPEATS = 7

#: PR 2's committed sequential seconds for this workload; the fused
#: configuration must beat it by >= 20% (ISSUE 3 acceptance).
PR2_SEQUENTIAL_SECONDS = 0.3596

#: PR 3's committed master-overhead fraction for the fused sequential
#: retina; the zero-copy path must land strictly below it.
PR3_OVERHEAD_FRACTION = 0.211

#: The codegen PR's target: with the fused recipes lowered to generated
#: Python, the master-overhead share of the instrumented wall clock must
#: land strictly below one tenth.
CODEGEN_OVERHEAD_TARGET = 0.10

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"


@pytest.fixture(scope="module")
def compiled():
    return compile_retina(2, CONFIG)


@pytest.fixture(scope="module")
def compiled_fused():
    return compile_retina(2, CONFIG, fuse=True)


@pytest.fixture(scope="module")
def compiled_donated():
    return compile_retina(2, CONFIG, fuse=True, donate=True)


@pytest.fixture(scope="module")
def compiled_codegen():
    return compile_retina(2, CONFIG, fuse=True, donate=True, codegen=True)


def _best_of(fn, repeats=REPEATS):
    best = None
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, value


def _record(key: str, entry) -> None:
    """Merge one workload's entry into the committed result file."""
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data[key] = entry
    RESULT_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _sequential_entry(compiled, args=()):
    """Best-of wall clock plus instrumented phase + memory breakdowns."""
    graph, registry = compiled.graph, compiled.registry
    seconds, result = _best_of(
        lambda: SequentialExecutor().run(graph, args=args, registry=registry)
    )

    # Phase split: best-of instrumented runs, keeping the split from the
    # fastest one so a scheduler hiccup cannot inflate the overhead share.
    # Uses the engine's native probe (``profile_ops``: two bare clock
    # reads around each operator body, accumulated in
    # ``stats.op_body_seconds``) rather than an ``OpFinished`` subscriber:
    # per-firing event objects cost microseconds each, which the split
    # would misattribute to master overhead — the same reasoning that
    # keeps the block hook out of the timed pass below.
    instrumented = None
    body = 0.0
    for _ in range(PROBE_REPEATS):
        t0 = time.perf_counter()
        probe = SequentialExecutor(profile_ops=True).run(
            graph, args=args, registry=registry
        )
        elapsed = time.perf_counter() - t0
        if instrumented is None or elapsed < instrumented:
            instrumented = elapsed
            body = probe.stats.op_body_seconds

    # Allocation census: a separate untimed pass, because the block hook
    # also streams retain/release traffic the timed split must not pay.
    allocated = 0
    allocated_bytes = 0

    def on_allocated(e):
        nonlocal allocated, allocated_bytes
        allocated += 1
        allocated_bytes += e.nbytes

    alloc_bus = EventBus()
    alloc_bus.subscribe(on_allocated, (BlockAllocated,))
    with observe_blocks(alloc_bus):
        SequentialExecutor(bus=alloc_bus).run(
            graph, args=args, registry=registry
        )

    overhead = max(instrumented - body, 0.0)
    stats = result.stats
    entry = {
        "seconds": seconds,
        "tasks_fired": stats.tasks_fired,
        "ops_executed": stats.ops_executed,
        "fused_fires": stats.fused_fires,
        "fused_ops_saved": stats.fused_ops_saved,
        "phase": {
            "instrumented_seconds": instrumented,
            "operator_body_seconds": body,
            "master_overhead_seconds": overhead,
            "master_overhead_fraction": overhead / instrumented,
        },
        "memory": {
            "blocks_allocated": allocated,
            "blocks_allocated_bytes": allocated_bytes,
            "cow_copies": stats.cow_copies,
            "in_place_writes": stats.in_place_writes,
            "copies_avoided": stats.copies_avoided,
            "bytes_copy_avoided": stats.bytes_copy_avoided,
            "donation_misses": stats.donation_misses,
            "buffers_recycled": stats.buffers_recycled,
            "buffer_bytes_recycled": stats.buffer_bytes_recycled,
        },
    }
    return entry, result


def _policy_entry(calibration, extra_dispatch=()):
    """The dispatch decision the calibrated policy implies, for the record."""
    return {
        "source": "measured per-operator wall seconds (calibrate_dispatch)",
        "min_dispatch_seconds": calibration.min_dispatch_seconds,
        "dispatch": sorted(
            set(calibration.dispatch) | set(extra_dispatch)
        ),
        "keep_local": calibration.keep_local,
    }


def test_wallclock_speedup(
    compiled, compiled_fused, compiled_donated, compiled_codegen,
    report, bench_json,
):
    unfused_entry, unfused_result = _sequential_entry(compiled)
    fused_entry, fused_result = _sequential_entry(compiled_fused)
    donated_entry, donated_result = _sequential_entry(compiled_donated)
    codegen_entry, codegen_result = _sequential_entry(compiled_codegen)
    codegen_entry["codegen_pass_seconds"] = (
        compiled_codegen.pass_seconds.get("codegen", 0.0)
    )
    reference = unfused_result.value.signature()
    assert fused_result.value.signature() == reference, (
        "fused sequential run diverged from unfused"
    )
    assert donated_result.value.signature() == reference, (
        "fused+donated sequential run diverged from unfused"
    )
    assert codegen_result.value.signature() == reference, (
        "codegen sequential run diverged from unfused (interpreted)"
    )
    assert fused_entry["tasks_fired"] < unfused_entry["tasks_fired"], (
        "fusion must fire strictly fewer engine tasks"
    )
    assert donated_entry["memory"]["copies_avoided"] > 0, (
        "donation must discharge at least one copy on the retina pipeline"
    )
    assert donated_entry["memory"]["donation_misses"] == 0, (
        "every donated retina edge should be unique at fire time"
    )

    def phase_row(label, e):
        p = e["phase"]
        m = e["memory"]
        return (
            f"{label:<22} {e['seconds']:>9.3f} "
            f"{p['operator_body_seconds']:>9.3f} "
            f"{p['master_overhead_seconds']:>9.3f} "
            f"{e['tasks_fired']:>7d} {m['blocks_allocated']:>7d} "
            f"{m['copies_avoided']:>7d}"
        )

    rows = [
        f"retina v2 {CONFIG.height}x{CONFIG.width}, "
        f"kernel {CONFIG.kernel_size}, {CONFIG.num_iter} iteration(s); "
        f"host cpus: {os.cpu_count()}",
        "",
        f"{'configuration':<22} {'seconds':>9} {'op body':>9} "
        f"{'overhead':>9} {'fires':>7} {'allocs':>7} {'avoided':>7}",
        phase_row("sequential unfused", unfused_entry),
        phase_row("sequential fused", fused_entry),
        phase_row("fused + donated", donated_entry),
        phase_row("donated + codegen", codegen_entry),
    ]
    entry = {
        "workload": {
            "app": "retina-v2",
            "height": CONFIG.height,
            "width": CONFIG.width,
            "kernel_size": CONFIG.kernel_size,
            "num_iter": CONFIG.num_iter,
        },
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "baseline_pr2_sequential_seconds": PR2_SEQUENTIAL_SECONDS,
        "baseline_pr3_overhead_fraction": PR3_OVERHEAD_FRACTION,
        "codegen_overhead_target": CODEGEN_OVERHEAD_TARGET,
        "sequential_seconds": codegen_entry["seconds"],
        "unfused": unfused_entry,
        "fused": fused_entry,
        "donated": donated_entry,
        "codegen": codegen_entry,
        "process": {},
    }

    graph, registry = compiled_codegen.graph, compiled_codegen.registry
    calibration = calibrate_dispatch_cached(graph, registry)
    entry["process"]["policy"] = _policy_entry(calibration)
    codegen_seconds = codegen_entry["seconds"]
    for workers in WORKER_COUNTS:
        seconds, result = _best_of(
            lambda w=workers: ProcessExecutor(
                w, measured_costs=calibration.seconds_by_operator
            ).run(graph, registry=registry)
        )
        assert result.value.signature() == reference, (
            f"ProcessExecutor({workers}) diverged from sequential"
        )
        speedup = codegen_seconds / seconds
        entry["process"][str(workers)] = {
            "seconds": seconds,
            "speedup": speedup,
        }
        rows.append(
            f"{f'process workers={workers}':<22} {seconds:>9.3f} "
            f"{'':>9} {'':>9} {'':>7} {'':>7} {'':>7}  {speedup:>6.2f}x"
        )

    # Causal profile: one fully-recorded pass over the donated graph.
    # The critical-path report must explain the wall clock it was
    # measured against (attribution reconciles within the tolerance) —
    # the cross-check that keeps the profiler honest on a real workload.
    ctx = RunContext(
        "bench-retina", record_events=True, flight_recorder=False,
        metrics=False,
    )
    t0 = time.perf_counter()
    SequentialExecutor(run_ctx=ctx).run(graph, registry=registry)
    profiled_wall = time.perf_counter() - t0
    critpath = ctx.critical_path(profiled_wall)
    entry["critical_path"] = critpath.to_dict()
    rows.append("")
    rows.append(
        f"critical path: {len(critpath.path)} of {critpath.n_firings} "
        f"firings, {critpath.path_seconds:.4f}s busy of "
        f"{profiled_wall:.4f}s wall (profiled pass)"
    )
    rows.append(
        f"attribution reconciles within "
        f"{critpath.reconciliation_error:.2%} of wallclock "
        f"(tolerance {RECONCILIATION_TOLERANCE:.0%})"
    )

    _record("retina_wallclock", entry)
    bench_json("retina_wallclock", entry)
    gain = 1.0 - codegen_seconds / PR2_SEQUENTIAL_SECONDS
    donated_fraction = donated_entry["phase"]["master_overhead_fraction"]
    fraction = codegen_entry["phase"]["master_overhead_fraction"]
    rows.append("")
    rows.append(
        f"donated+codegen sequential vs PR 2 baseline "
        f"({PR2_SEQUENTIAL_SECONDS:.4f}s): {gain:+.1%}"
    )
    rows.append(
        f"master overhead fraction: {donated_fraction:.4f} interpreted, "
        f"{fraction:.4f} codegen (PR 3 committed: {PR3_OVERHEAD_FRACTION}, "
        f"codegen target: {CODEGEN_OVERHEAD_TARGET})"
    )
    rows.append(
        f"dispatch policy: {len(calibration.keep_local)} operator(s) "
        f"kept local, {len(calibration.dispatch)} dispatched"
    )
    rows.append(f"wrote {RESULT_PATH.name} (bit-identical across executors)")
    report(
        "Wall-clock — retina, unfused/fused/donated/codegen", "\n".join(rows)
    )

    assert codegen_seconds <= 0.8 * PR2_SEQUENTIAL_SECONDS, (
        f"donated+codegen sequential must improve >= 20% on the PR 2 "
        f"baseline ({PR2_SEQUENTIAL_SECONDS}s); got {codegen_seconds:.4f}s"
    )
    assert donated_fraction < PR3_OVERHEAD_FRACTION, (
        f"interpreted master overhead fraction must land strictly below "
        f"the PR 3 record ({PR3_OVERHEAD_FRACTION}); got {donated_fraction:.4f}"
    )
    assert fraction < CODEGEN_OVERHEAD_TARGET, (
        f"codegen master overhead fraction must land strictly below "
        f"{CODEGEN_OVERHEAD_TARGET}; got {fraction:.4f}"
    )
    assert critpath.reconciliation_error <= RECONCILIATION_TOLERANCE, (
        f"critical-path attribution must reconcile with wallclock within "
        f"{RECONCILIATION_TOLERANCE:.0%}; "
        f"got {critpath.reconciliation_error:.2%}"
    )

    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(
            f"host has {cpus} CPU(s); >= 1x-at-4-workers assertion needs "
            ">= 4 (results still recorded)"
        )
    assert entry["process"]["4"]["speedup"] >= 1.0, (
        "calibrated dispatch must not lose to sequential at 4 workers on "
        f"a >= 4-CPU host, got {entry['process']['4']['speedup']:.2f}x"
    )


def test_wallclock_montecarlo(report, bench_json):
    prog = compile_pi(batch_size=MC_BATCH_SIZE)
    graph, registry = prog.graph, prog.registry
    args = (MC_BATCHES,)
    seq_entry, seq_result = _sequential_entry(prog, args=args)
    reference = seq_result.value

    # The batch leaves are applied through first-class function values, so
    # the tracer cannot see them; their static cost hints
    # (batch_size x ticks_per_sample >> cost_threshold) carry the dispatch
    # decision instead, and the policy record says so.
    calibration = calibrate_dispatch_cached(graph, registry, args=args)
    policy = _policy_entry(calibration, extra_dispatch=("pi_batch",))
    policy["note"] = (
        "pi_batch dispatches on its static cost hint; prelude glue is "
        "measured and kept local"
    )

    entry = {
        "workload": {
            "app": "montecarlo-pi",
            "n_batches": MC_BATCHES,
            "batch_size": MC_BATCH_SIZE,
        },
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "sequential_seconds": seq_entry["seconds"],
        "sequential": seq_entry,
        "process": {"policy": policy},
    }
    rows = [
        f"montecarlo pi, {MC_BATCHES} batches x {MC_BATCH_SIZE} samples; "
        f"host cpus: {os.cpu_count()}",
        "",
        f"{'configuration':<26} {'seconds':>9} {'ipc msgs':>9} "
        f"{'ipc/fire':>9}",
        f"{'sequential':<26} {seq_entry['seconds']:>9.3f}",
    ]

    def process_row(workers, batch, repeats=REPEATS):
        seconds, result = _best_of(
            lambda: ProcessExecutor(
                workers,
                batch=batch,
                measured_costs=calibration.seconds_by_operator,
            ).run(graph, args=args, registry=registry),
            repeats=repeats,
        )
        assert result.value == reference, (
            f"ProcessExecutor({workers}, batch={batch}) montecarlo "
            "diverged from sequential"
        )
        stats = result.stats
        messages = stats.ipc_messages_sent + stats.ipc_messages_received
        fires = max(stats.dispatched_fires, 1)
        row = {
            "seconds": seconds,
            "speedup": seq_entry["seconds"] / seconds,
            "batch": batch,
            "ipc_messages": messages,
            "ipc_messages_sent": stats.ipc_messages_sent,
            "ipc_messages_received": stats.ipc_messages_received,
            "ipc_per_fire": messages / fires,
            "dispatched_fires": stats.dispatched_fires,
            "fire_batches": stats.fire_batches,
            "batched_fires": stats.batched_fires,
        }
        label = f"process workers={workers}" + ("" if batch else " no-batch")
        rows.append(
            f"{label:<26} {seconds:>9.3f} {messages:>9d} "
            f"{row['ipc_per_fire']:>9.3f}  {row['speedup']:>6.2f}x"
        )
        return row

    # The headline pair: 1 worker with and without batching, the
    # configuration the batching acceptance is judged on (IPC savings
    # need no second CPU, so this holds on any host).
    unbatched_1 = process_row(1, batch=False, repeats=MC_HEADLINE_REPEATS)
    batched_1 = process_row(1, batch=True, repeats=MC_HEADLINE_REPEATS)
    entry["process"]["1"] = batched_1
    entry["process"]["1_unbatched"] = unbatched_1
    for workers in WORKER_COUNTS[1:]:
        entry["process"][str(workers)] = process_row(workers, batch=True)

    # The committed improvement number is subject to the same gates as
    # the assertion that enforces it: a throttled host (regime probe) or
    # a 1-CPU host measures a number the target was never about, and
    # committing it ungated reads as a regression that is not one.  The
    # raw measurement is still recorded, explicitly labelled.
    regime = seq_entry["seconds"] / MC_BASELINE_SEQUENTIAL_SECONDS
    raw_improvement = (
        1.0 - batched_1["seconds"] / MC_BASELINE_PROCESS1_SECONDS
    )
    gated = regime <= MC_REGIME_TOLERANCE
    entry["batching"] = {
        "baseline_process1_seconds": MC_BASELINE_PROCESS1_SECONDS,
        "improvement_target": MC_BATCH_IMPROVEMENT,
        "ipc_drop_factor_target": MC_IPC_DROP_FACTOR,
        "ipc_drop_factor": (
            unbatched_1["ipc_per_fire"] / batched_1["ipc_per_fire"]
        ),
        "improvement_vs_baseline": raw_improvement if gated else None,
        "improvement_vs_baseline_raw": raw_improvement,
        "improvement_gate": (
            "in-regime"
            if gated
            else (
                f"host {regime:.2f}x slower than the committed "
                f"sequential baseline (tolerance "
                f"{MC_REGIME_TOLERANCE}); absolute improvement not "
                "comparable"
            )
        ),
        "host_regime": regime,
    }
    rows.append("")
    rows.append(
        f"batched 1-worker vs committed baseline "
        f"({MC_BASELINE_PROCESS1_SECONDS:.4f}s): "
        f"{raw_improvement:+.1%} "
        f"(target >= {MC_BATCH_IMPROVEMENT:.0%}"
        + ("" if gated else f"; ungated: host regime {regime:.2f}x")
        + ")"
    )
    rows.append(
        f"ipc per dispatched fire: {unbatched_1['ipc_per_fire']:.3f} -> "
        f"{batched_1['ipc_per_fire']:.3f} "
        f"({entry['batching']['ipc_drop_factor']:.1f}x drop, "
        f"target >= {MC_IPC_DROP_FACTOR:.0f}x)"
    )

    _record("montecarlo_wallclock", entry)
    bench_json("montecarlo_wallclock", entry)
    report("Wall-clock — montecarlo pi (par_reduce)", "\n".join(rows))

    assert entry["batching"]["ipc_drop_factor"] >= MC_IPC_DROP_FACTOR, (
        "batching must cut IPC messages per dispatched fire by >= "
        f"{MC_IPC_DROP_FACTOR:.0f}x; got "
        f"{entry['batching']['ipc_drop_factor']:.1f}x"
    )
    assert batched_1["seconds"] <= 1.05 * unbatched_1["seconds"], (
        "batched 1-worker must not lose to unbatched on the same host "
        f"(it strictly does less work); got {batched_1['seconds']:.4f}s "
        f"vs {unbatched_1['seconds']:.4f}s"
    )

    # The absolute gate needs the host in the regime the baseline was
    # recorded in; the run's own sequential time is the probe.
    regime = entry["batching"]["host_regime"]
    if regime > MC_REGIME_TOLERANCE:
        pytest.skip(
            f"host is running {regime:.2f}x slower than the committed "
            f"sequential baseline ({MC_BASELINE_SEQUENTIAL_SECONDS}s) — "
            "throttled phase; absolute wall-clock gate skipped, relative "
            "wins asserted above (results still recorded)"
        )
    assert batched_1["seconds"] <= (
        (1.0 - MC_BATCH_IMPROVEMENT) * MC_BASELINE_PROCESS1_SECONDS
    ), (
        f"batched 1-worker wall clock must improve >= "
        f"{MC_BATCH_IMPROVEMENT:.0%} on the committed "
        f"{MC_BASELINE_PROCESS1_SECONDS}s; got {batched_1['seconds']:.4f}s"
    )

    # Parallel-speedup expectations need real parallel hardware: one CPU
    # can only interleave the workers, so only the IPC accounting above
    # is asserted there and the timings are recorded as-is.
    cpus = os.cpu_count() or 1
    if cpus <= 1:
        pytest.skip(
            "host has 1 CPU; parallel speedup expectations need > 1 "
            "(results still recorded)"
        )
    if cpus < 4:
        pytest.skip(
            f"host has {cpus} CPU(s); >= 1x-at-4-workers assertion needs "
            ">= 4 (results still recorded)"
        )
    assert entry["process"]["4"]["speedup"] >= 1.0, (
        "coarse-grained montecarlo batches must not lose to sequential "
        f"at 4 workers, got {entry['process']['4']['speedup']:.2f}x"
    )


# ---------------------------------------------------------------------------
# Affinity: locality-aware dispatch on a production-size fan-out
# ---------------------------------------------------------------------------

#: Fan-out shape for the locality rows: one block, read by AF_FAN
#: dispatched consumers.  Sized so each avoided ship is megabytes.
AF_FAN = 8
AF_BLOCK_ELEMS = 500_000  # 4 MB of float64
AF_COSTS = {"af_produce": 0.05, "af_stage": 0.05}


def _affinity_workload():
    import numpy as np

    from repro import compile_source
    from repro.runtime import default_registry

    reg = default_registry()

    @reg.register(name="af_produce", pure=True)
    def af_produce(seed):
        rng = np.random.default_rng(seed)
        return rng.standard_normal(AF_BLOCK_ELEMS)

    @reg.register(name="af_stage", pure=True)
    def af_stage(a, k):
        return float((a * k).sum())

    stages = "\n".join(
        f"      s{i} = af_stage(blk, {i})" for i in range(1, AF_FAN + 1)
    )
    acc = "s1"
    for i in range(2, AF_FAN + 1):
        acc = f"add({acc}, s{i})"
    src = (
        f"main(seed)\n  let blk = af_produce(seed)\n{stages}\n  in {acc}\n"
    )
    return compile_source(src, registry=reg), reg


def test_wallclock_affinity(report, bench_json):
    compiled, registry = _affinity_workload()
    graph = compiled.graph
    args = (31,)
    reference = SequentialExecutor().run(
        graph, args=args, registry=registry
    ).value

    def affinity_row(affinity, workers=2):
        seconds, result = _best_of(
            lambda: ProcessExecutor(
                workers,
                measured_costs=AF_COSTS,
                shm_threshold=1 << 30,  # measure the pickle wire path
                affinity=affinity,
            ).run(graph, args=args, registry=registry)
        )
        assert result.value == reference, (
            f"affinity={affinity!r} diverged from sequential"
        )
        stats = result.stats
        return {
            "seconds": seconds,
            "encode_bytes": stats.encode_bytes,
            "encode_bytes_avoided": stats.encode_bytes_avoided,
            "blocks_ref_shipped": stats.blocks_ref_shipped,
            "blocks_cached": stats.blocks_cached,
            "affinity_misses": stats.affinity_misses,
        }

    none_row = affinity_row("none")
    data_row = affinity_row("data")
    reduction = none_row["encode_bytes"] / max(data_row["encode_bytes"], 1)

    entry = {
        "workload": {
            "app": "affinity-fanout",
            "fan": AF_FAN,
            "block_bytes": AF_BLOCK_ELEMS * 8,
        },
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "none": none_row,
        "data": data_row,
        "encode_reduction_factor": reduction,
    }
    _record("affinity_fanout", entry)
    bench_json("affinity_fanout", entry)

    rows = [
        f"fan-out: 1 x {AF_BLOCK_ELEMS * 8 / 1e6:.0f} MB block -> "
        f"{AF_FAN} dispatched reads; host cpus: {os.cpu_count()}",
        "",
        f"{'configuration':<18} {'seconds':>9} {'enc bytes':>12} "
        f"{'avoided':>12} {'refs':>5}",
        f"{'affinity=none':<18} {none_row['seconds']:>9.3f} "
        f"{none_row['encode_bytes']:>12d} "
        f"{none_row['encode_bytes_avoided']:>12d} "
        f"{none_row['blocks_ref_shipped']:>5d}",
        f"{'affinity=data':<18} {data_row['seconds']:>9.3f} "
        f"{data_row['encode_bytes']:>12d} "
        f"{data_row['encode_bytes_avoided']:>12d} "
        f"{data_row['blocks_ref_shipped']:>5d}",
        "",
        f"encoded wire bytes: {reduction:.1f}x fewer with affinity=data "
        f"(target >= 2x, bit-identical results)",
    ]
    report("Wall-clock — affinity fan-out (locality)", "\n".join(rows))

    assert data_row["blocks_ref_shipped"] >= AF_FAN - 1
    assert none_row["encode_bytes"] >= 2 * data_row["encode_bytes"], (
        f"affinity=data must halve the encoded wire bytes on the "
        f"fan-out: {data_row['encode_bytes']} vs "
        f"{none_row['encode_bytes']}"
    )
