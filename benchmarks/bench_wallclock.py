"""Real wall-clock speedup: retina on the real executors, fused vs not.

Every other benchmark in this directory reproduces the paper's *simulated*
evaluation; this one is the real entry in the perf trajectory.  It runs
the retina model (v2, the balanced decomposition of section 5.2) at a
production-ish size on the actual machine:

* sequential, unfused — the PR 2 configuration, for continuity;
* sequential, fused — the operator-fusion + fast-path configuration;
* ProcessExecutor at 1/2/4 workers on the fused graph, asserting
  bit-identical results and — on hosts with at least 4 CPUs — a >= 2x
  speedup at 4 workers, the real-hardware analogue of Figure 1.

For each sequential configuration an instrumented pass (event bus with an
``OpFinished`` subscriber) splits the wall clock into *operator body
time* (seconds inside operator functions) and *master overhead* (engine
dispatch: readiness bookkeeping, queue traffic, value wrapping) — the
per-phase breakdown that shows what fusion and the slot-indexed fast
path actually buy.  Fire counts (engine task firings and operator
invocations) are recorded for both graphs; the fused graph must fire
strictly fewer tasks.

Results always go to ``BENCH_wallclock.json`` next to the repository root
(the committed perf record, with host CPU count so entries from different
machines stay interpretable), and additionally to ``--bench-json FILE``
when given.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.apps.retina import RetinaConfig, compile_retina
from repro.obs import EventBus, OpFinished
from repro.runtime import ProcessExecutor, SequentialExecutor

#: >= the 128x128 floor from the acceptance criteria; kernel and
#: iteration count sized so operator compute dominates dispatch overhead.
CONFIG = RetinaConfig(height=256, width=256, kernel_size=13, num_iter=4)
WORKER_COUNTS = (1, 2, 4)
REPEATS = 2

#: PR 2's committed sequential seconds for this workload; the fused
#: configuration must beat it by >= 20% (ISSUE 3 acceptance).
PR2_SEQUENTIAL_SECONDS = 0.3596

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"


@pytest.fixture(scope="module")
def compiled():
    return compile_retina(2, CONFIG)


@pytest.fixture(scope="module")
def compiled_fused():
    return compile_retina(2, CONFIG, fuse=True)


def _best_of(fn, repeats=REPEATS):
    best = None
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, value


def _sequential_entry(compiled):
    """Best-of wall clock plus an instrumented phase breakdown."""
    graph, registry = compiled.graph, compiled.registry
    seconds, result = _best_of(
        lambda: SequentialExecutor().run(graph, registry=registry)
    )

    body = 0.0

    def on_finished(e):
        nonlocal body
        body += e.duration

    bus = EventBus()
    bus.subscribe(on_finished, (OpFinished,))
    t0 = time.perf_counter()
    SequentialExecutor(bus=bus).run(graph, registry=registry)
    instrumented = time.perf_counter() - t0

    overhead = max(instrumented - body, 0.0)
    stats = result.stats
    entry = {
        "seconds": seconds,
        "tasks_fired": stats.tasks_fired,
        "ops_executed": stats.ops_executed,
        "fused_fires": stats.fused_fires,
        "fused_ops_saved": stats.fused_ops_saved,
        "phase": {
            "instrumented_seconds": instrumented,
            "operator_body_seconds": body,
            "master_overhead_seconds": overhead,
            "master_overhead_fraction": overhead / instrumented,
        },
    }
    return entry, result


def test_wallclock_speedup(compiled, compiled_fused, report, bench_json):
    unfused_entry, unfused_result = _sequential_entry(compiled)
    fused_entry, fused_result = _sequential_entry(compiled_fused)
    reference = unfused_result.value.signature()
    assert fused_result.value.signature() == reference, (
        "fused sequential run diverged from unfused"
    )
    assert fused_entry["tasks_fired"] < unfused_entry["tasks_fired"], (
        "fusion must fire strictly fewer engine tasks"
    )

    def phase_row(label, e):
        p = e["phase"]
        return (
            f"{label:<22} {e['seconds']:>9.3f} "
            f"{p['operator_body_seconds']:>9.3f} "
            f"{p['master_overhead_seconds']:>9.3f} "
            f"{e['tasks_fired']:>7d}"
        )

    rows = [
        f"retina v2 {CONFIG.height}x{CONFIG.width}, "
        f"kernel {CONFIG.kernel_size}, {CONFIG.num_iter} iteration(s); "
        f"host cpus: {os.cpu_count()}",
        "",
        f"{'configuration':<22} {'seconds':>9} {'op body':>9} "
        f"{'overhead':>9} {'fires':>7}",
        phase_row("sequential unfused", unfused_entry),
        phase_row("sequential fused", fused_entry),
    ]
    entry = {
        "workload": {
            "app": "retina-v2",
            "height": CONFIG.height,
            "width": CONFIG.width,
            "kernel_size": CONFIG.kernel_size,
            "num_iter": CONFIG.num_iter,
        },
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "baseline_pr2_sequential_seconds": PR2_SEQUENTIAL_SECONDS,
        "sequential_seconds": fused_entry["seconds"],
        "unfused": unfused_entry,
        "fused": fused_entry,
        "process": {},
    }

    graph, registry = compiled_fused.graph, compiled_fused.registry
    fused_seconds = fused_entry["seconds"]
    for workers in WORKER_COUNTS:
        seconds, result = _best_of(
            lambda w=workers: ProcessExecutor(w).run(graph, registry=registry)
        )
        assert result.value.signature() == reference, (
            f"ProcessExecutor({workers}) diverged from sequential"
        )
        speedup = fused_seconds / seconds
        entry["process"][str(workers)] = {
            "seconds": seconds,
            "speedup": speedup,
        }
        rows.append(
            f"{f'process workers={workers}':<22} {seconds:>9.3f} "
            f"{'':>9} {'':>9} {'':>7}  {speedup:>6.2f}x"
        )

    RESULT_PATH.write_text(
        json.dumps({"retina_wallclock": entry}, indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    bench_json("retina_wallclock", entry)
    gain = 1.0 - fused_seconds / PR2_SEQUENTIAL_SECONDS
    rows.append("")
    rows.append(
        f"fused sequential vs PR 2 baseline "
        f"({PR2_SEQUENTIAL_SECONDS:.4f}s): {gain:+.1%}"
    )
    rows.append(f"wrote {RESULT_PATH.name} (bit-identical across executors)")
    report("Wall-clock — retina, fused vs unfused", "\n".join(rows))

    assert fused_seconds <= 0.8 * PR2_SEQUENTIAL_SECONDS, (
        f"fused sequential must improve >= 20% on the PR 2 baseline "
        f"({PR2_SEQUENTIAL_SECONDS}s); got {fused_seconds:.4f}s"
    )

    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(
            f"host has {cpus} CPU(s); >= 2x-at-4-workers assertion needs "
            ">= 4 (results still recorded)"
        )
    assert entry["process"]["4"]["speedup"] >= 2.0, (
        "expected >= 2x wall-clock speedup with 4 workers on a >= 4-CPU "
        f"host, got {entry['process']['4']['speedup']:.2f}x"
    )
