"""Real wall-clock speedup: retina on the ProcessExecutor.

Every other benchmark in this directory reproduces the paper's *simulated*
evaluation; this one is the first real entry in the perf trajectory.  It
runs the retina model (v2, the balanced decomposition of section 5.2) at a
production-ish size on the actual machine, sequential versus the
ProcessExecutor at 1/2/4 workers, asserting bit-identical results and —
on hosts with at least 4 CPUs — a >= 2x speedup at 4 workers, the
real-hardware analogue of Figure 1's simulated curve.

Results always go to ``BENCH_wallclock.json`` next to the repository root
(the committed perf record, with host CPU count so entries from different
machines stay interpretable), and additionally to ``--bench-json FILE``
when given.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.apps.retina import RetinaConfig, compile_retina
from repro.runtime import ProcessExecutor, SequentialExecutor

#: >= the 128x128 floor from the acceptance criteria; kernel and
#: iteration count sized so operator compute dominates dispatch overhead.
CONFIG = RetinaConfig(height=256, width=256, kernel_size=13, num_iter=4)
WORKER_COUNTS = (1, 2, 4)
REPEATS = 2

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"


@pytest.fixture(scope="module")
def compiled():
    return compile_retina(2, CONFIG)


def _best_of(fn, repeats=REPEATS):
    best = None
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, value


def test_wallclock_speedup(compiled, report, bench_json):
    graph, registry = compiled.graph, compiled.registry
    seq_seconds, seq_result = _best_of(
        lambda: SequentialExecutor().run(graph, registry=registry)
    )
    reference = seq_result.value.signature()

    rows = [
        f"retina v2 {CONFIG.height}x{CONFIG.width}, "
        f"kernel {CONFIG.kernel_size}, {CONFIG.num_iter} iteration(s); "
        f"host cpus: {os.cpu_count()}",
        "",
        f"{'executor':<22} {'seconds':>9} {'speedup':>9}",
        f"{'sequential':<22} {seq_seconds:>9.3f} {1.0:>9.2f}",
    ]
    entry = {
        "workload": {
            "app": "retina-v2",
            "height": CONFIG.height,
            "width": CONFIG.width,
            "kernel_size": CONFIG.kernel_size,
            "num_iter": CONFIG.num_iter,
        },
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "sequential_seconds": seq_seconds,
        "process": {},
    }
    for workers in WORKER_COUNTS:
        seconds, result = _best_of(
            lambda w=workers: ProcessExecutor(w).run(graph, registry=registry)
        )
        assert result.value.signature() == reference, (
            f"ProcessExecutor({workers}) diverged from sequential"
        )
        speedup = seq_seconds / seconds
        entry["process"][str(workers)] = {
            "seconds": seconds,
            "speedup": speedup,
        }
        rows.append(
            f"{f'process workers={workers}':<22} {seconds:>9.3f} "
            f"{speedup:>9.2f}"
        )

    RESULT_PATH.write_text(
        json.dumps({"retina_wallclock": entry}, indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    bench_json("retina_wallclock", entry)
    rows.append("")
    rows.append(f"wrote {RESULT_PATH.name} (bit-identical across executors)")
    report("Wall-clock — retina on the ProcessExecutor", "\n".join(rows))

    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(
            f"host has {cpus} CPU(s); >= 2x-at-4-workers assertion needs "
            ">= 4 (results still recorded)"
        )
    assert entry["process"]["4"]["speedup"] >= 2.0, (
        "expected >= 2x wall-clock speedup with 4 workers on a >= 4-CPU "
        f"host, got {entry['process']['4']['speedup']:.2f}x"
    )
