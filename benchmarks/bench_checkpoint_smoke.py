"""Checkpoint/resume smoke checks, small enough for CI (PR 10).

Four gates on the robustness tentpole:

* **The kill -9 drill** — the log-analytics CLI runs as a subprocess
  with a seeded ``masterkill`` clause, dies by real ``SIGKILL`` mid
  stream, resumes from its checkpoint in a fresh process, and must
  produce a sink file *bit-identical* to an uninterrupted reference run
  (no missing rows, no duplicated rows, no divergent bytes).
* **Flat memory** — a 10⁵-firing streaming run (the ISSUE's order of
  magnitude) must hold RSS growth near zero: pull-based sources admit
  one item at a time, so nothing accumulates with stream length.
* **Checkpoint overhead < 5%** — periodic snapshots on a firing-count
  cadence must cost under 5% of the uncheckpointed wall clock, and the
  sink digest must be unchanged by checkpointing.  The measured pair is
  committed to ``BENCH_wallclock.json`` under ``streaming_checkpoint``.
* **Zero arena leaks** — after the drill, no shared-memory segment and
  no live arena survives (the atexit/SIGTERM reaper of
  :mod:`repro.runtime.workers` is the last line of defense; the drill
  proves the normal paths never need it).
"""

from __future__ import annotations

import json
import os
import resource
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro import compile_source
from repro.runtime.stream import (
    JsonlSink,
    MemorySink,
    StreamRunner,
    count_source,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"
SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

#: 16 engine firings per item; 6 500 items ≈ 10⁵ firings.
DEEP_SRC = (
    "main(acc, x)\n  add(acc, "
    + "add(mul(x,x), " * 7
    + "incr(x)"
    + ")" * 8
)
FLAT_RSS_ITEMS = 6_500
RSS_BUDGET_KIB = 24 * 1024  # allocator noise allowance, ~24 MiB

#: Overhead workload: 600 log batches (4 800 fires, ~0.6 s) with a
#: snapshot every 800 fires — each snapshot is an fsync'd atomic
#: rename, so the cadence must be amortized over real work.
OVERHEAD_ITEMS = 600
CHECKPOINT_EVERY = 800
OVERHEAD_BUDGET = 0.05
REPEATS = 3

DRILL_ITEMS = 60
DRILL_KILL_AT = 35


def _cli(args: list[str], cwd: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    return subprocess.run(
        [sys.executable, "-m", "repro.apps.loganalytics", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def _record(entry: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data["streaming_checkpoint"] = entry
    RESULT_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _shm_entries() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - non-tmpfs platforms
        return set()


def test_masterkill_resume_bit_identical(tmp_path):
    """kill -9 the master mid-stream; resume must replay nothing and
    reproduce the uninterrupted sink byte for byte."""
    cwd = str(tmp_path)
    shm_before = _shm_entries()

    ref = _cli(
        ["--items", str(DRILL_ITEMS), "--sink", "ref.jsonl", "--quiet"],
        cwd,
    )
    assert ref.returncode == 0, ref.stderr

    crash = _cli(
        [
            "--items", str(DRILL_ITEMS),
            "--sink", "out.jsonl",
            "--checkpoint", "run.ckpt",
            "--checkpoint-every", "64",
            "--inject-faults", f"masterkill:nth={DRILL_KILL_AT}",
            "--quiet",
        ],
        cwd,
    )
    assert crash.returncode == -signal.SIGKILL or crash.returncode == 137, (
        f"masterkill must SIGKILL the master, got rc={crash.returncode}: "
        f"{crash.stderr}"
    )
    assert (tmp_path / "run.ckpt").exists(), "no checkpoint survived"
    partial = (tmp_path / "out.jsonl").read_bytes()
    reference = (tmp_path / "ref.jsonl").read_bytes()
    assert partial != reference, "the kill landed too late to test anything"

    resumed = _cli(
        [
            "--items", str(DRILL_ITEMS),
            "--sink", "out.jsonl",
            "--checkpoint", "run.ckpt",
            "--resume", "run.ckpt",
        ],
        cwd,
    )
    assert resumed.returncode == 0, resumed.stderr
    summary = json.loads(resumed.stdout)
    assert summary["resumed_from"] == "run.ckpt"
    assert summary["items"] == DRILL_ITEMS
    assert (tmp_path / "out.jsonl").read_bytes() == reference

    # Zero-leak gate: the drill (including the SIGKILLed master) must
    # leave /dev/shm as it found it, with nothing for atexit to reap.
    from repro.runtime.workers import cleanup_arenas

    assert cleanup_arenas() == 0, "live arenas left for the atexit reaper"
    assert _shm_entries() <= shm_before, "leaked shared-memory segments"


def test_flat_rss_over_1e5_firings(tmp_path):
    """RSS must stay flat over a ~10⁵-firing stream (the ISSUE gate)."""
    program = compile_source(DEEP_SRC)
    runner = StreamRunner(program, carry=True, initial=0)
    # Warm-up: plan cache, allocator arenas, interned machinery.
    runner.run(count_source(300), MemorySink())
    before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    sink = JsonlSink(str(tmp_path / "out.jsonl"))
    result = runner.run(count_source(FLAT_RSS_ITEMS), sink)
    sink.close()
    after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    assert result.fires >= 100_000
    growth_kib = after - before
    assert growth_kib < RSS_BUDGET_KIB, (
        f"RSS grew {growth_kib} KiB over {result.fires} firings — "
        f"streaming state is accumulating"
    )


def test_checkpoint_overhead_under_budget(tmp_path):
    """Periodic snapshots cost < 5% wall clock and change no output."""
    from repro.apps.loganalytics.stream import batch_source, make_stream_runner

    def run(checkpointed: bool, tag: str):
        best = None
        digest = None
        checkpoints = 0
        fires = 0
        for i in range(REPEATS):
            kwargs = {}
            if checkpointed:
                kwargs = {
                    "checkpoint_path": str(
                        tmp_path / f"{tag}{i}.ckpt"
                    ),
                    "checkpoint_every": CHECKPOINT_EVERY,
                }
            runner = make_stream_runner(**kwargs)
            sink = MemorySink()
            t0 = time.perf_counter()
            result = runner.run(
                batch_source(n_batches=OVERHEAD_ITEMS), sink
            )
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
            digest = result.sink_digest
            checkpoints = result.checkpoints_written
            fires = result.fires
        return best, digest, checkpoints, fires

    plain_seconds, plain_digest, _, fires = run(False, "none")
    ckpt_seconds, ckpt_digest, checkpoints, _ = run(True, "ck")

    assert ckpt_digest == plain_digest, (
        "checkpointing changed the sink output"
    )
    assert checkpoints >= 3, "cadence produced too few snapshots to measure"

    overhead = max(ckpt_seconds - plain_seconds, 0.0) / plain_seconds
    _record(
        {
            "workload": (
                f"loganalytics stream, {OVERHEAD_ITEMS} batches, "
                f"snapshot every {CHECKPOINT_EVERY} fires"
            ),
            "items": OVERHEAD_ITEMS,
            "fires": fires,
            "checkpoints_written": checkpoints,
            "plain_seconds": plain_seconds,
            "checkpointed_seconds": ckpt_seconds,
            "overhead_fraction": overhead,
            "budget": OVERHEAD_BUDGET,
            "cpu_count": os.cpu_count(),
        }
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"checkpoint overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} ({plain_seconds:.4f}s -> "
        f"{ckpt_seconds:.4f}s, {checkpoints} snapshots)"
    )
