"""Section 9.3: affinity scheduling on the NUMA Butterfly.

Paper: two preliminary policies — operator affinity ("once a given
operator has executed on a processor, it prefers to run on that
processor") and data affinity (a "processor preference ... attached to
the header of each data block"; scheduling "takes into account the size
and cached locations of its inputs").  "We expect affinity to be of some
use on machines like the Cray, but to be particularly important on
architectures like the Butterfly which have non-uniform access to
memory."

The experiment runs the retina on the simulated Butterfly under all three
policies and reports remote traffic and makespan; on the UMA Cray the
policies change (almost) nothing — exactly the paper's expectation.
"""

import pytest

from repro.apps.retina import RetinaConfig, compile_retina
from repro.machine import SimulatedExecutor, butterfly, cray_ymp

POLICIES = ("none", "operator", "data")
CONFIG = RetinaConfig(num_iter=2)


@pytest.fixture(scope="module")
def compiled():
    return compile_retina(2, CONFIG)


@pytest.fixture(scope="module")
def butterfly_runs(compiled):
    return {
        policy: SimulatedExecutor(butterfly(4), affinity=policy).run(
            compiled.graph, registry=compiled.registry
        )
        for policy in POLICIES
    }


def test_affinity_on_butterfly(benchmark, compiled, butterfly_runs, report):
    benchmark(
        lambda: SimulatedExecutor(butterfly(4), affinity="data").run(
            compiled.graph, registry=compiled.registry
        )
    )
    rows = [f"{'policy':<10}{'remote KB':>12}{'makespan':>14}{'vs none':>9}"]
    base = butterfly_runs["none"].ticks
    for policy in POLICIES:
        r = butterfly_runs[policy]
        rows.append(
            f"{policy:<10}{r.traffic.remote_bytes / 1024:>12.0f}"
            f"{r.ticks:>14.0f}{base / r.ticks:>9.2f}"
        )
    report(
        "Section 9.3 — affinity on the simulated Butterfly (P=4)",
        "\n".join(rows),
    )
    # Results never change; locality improves (or at worst matches).
    signatures = {r.value.signature() for r in butterfly_runs.values()}
    assert len(signatures) == 1
    assert (
        butterfly_runs["data"].traffic.remote_bytes
        <= butterfly_runs["none"].traffic.remote_bytes
    )
    assert butterfly_runs["data"].ticks <= butterfly_runs["none"].ticks * 1.02


def test_affinity_matters_less_on_uma_cray(compiled, butterfly_runs, report):
    cray_runs = {
        policy: SimulatedExecutor(cray_ymp(4), affinity=policy).run(
            compiled.graph, registry=compiled.registry
        )
        for policy in POLICIES
    }
    spread_cray = max(r.ticks for r in cray_runs.values()) / min(
        r.ticks for r in cray_runs.values()
    )
    spread_butterfly = max(r.ticks for r in butterfly_runs.values()) / min(
        r.ticks for r in butterfly_runs.values()
    )
    report(
        "Section 9.3 — policy sensitivity, UMA Cray vs NUMA Butterfly",
        f"makespan spread across policies: cray-ymp {spread_cray:.4f}x, "
        f"butterfly {spread_butterfly:.4f}x\n"
        "(paper: affinity 'of some use' on the Cray, 'particularly\n"
        " important' on the Butterfly)",
    )
    assert spread_cray - 1.0 <= spread_butterfly - 1.0 + 1e-9
