"""Section 9.2 ablation: hard-wired vs. dynamic-width parallelism.

The paper's self-critique: "the number of pieces into which a data
structure is divided is chosen explicitly by the Delirium programmer.
This is an awkward way to describe high degrees of parallelism and cannot
take into account the load of the system" — addressed by the coordination-
structure generalization, reproduced here as the prelude's recursive
combinators.

The experiment: the same 16-leaf reduction, written (a) as the paper-style
hard-wired 4-way fork-join and (b) with ``par_reduce``.  On four
processors both are fine; on eight and sixteen the hard-wired version is
stuck at 4x while the dynamic version keeps scaling.
"""

import pytest

from repro import compile_source, default_registry
from repro.machine import SimulatedExecutor, uniform

N_LEAVES = 16
WORK_TICKS = 100_000.0


def _registry():
    reg = default_registry()
    reg.register(name="work", pure=True, cost=WORK_TICKS)(lambda i: i * i)
    return reg


def hard_wired_program():
    """The paper-style idiom: the data is split into exactly four pieces
    and each piece is one sequential bite (like ``target_bite`` handling a
    quarter of the targets) — so each bite costs four leaves' work and the
    program can never use more than four processors."""
    reg = _registry()
    leaf = reg.get("work").fn

    @reg.register(name="bite", pure=True, cost=4 * WORK_TICKS)
    def bite(base):
        return sum(leaf(base + i) for i in range(4))

    src = """
    main()
      let g0 = bite(0)
          g1 = bite(4)
          g2 = bite(8)
          g3 = bite(12)
      in add(add(g0, g1), add(g2, g3))
    """
    return compile_source(src, registry=reg), reg


def dynamic_program():
    reg = _registry()
    compiled = compile_source(
        f"main() par_reduce(add, work, 0, {N_LEAVES})",
        registry=reg,
        prelude=True,
    )
    return compiled, reg


@pytest.fixture(scope="module")
def results():
    out = {}
    for name, (compiled, reg) in (
        ("hard-wired 4-way", hard_wired_program()),
        ("par_reduce (dynamic)", dynamic_program()),
    ):
        times = {
            p: SimulatedExecutor(uniform(p)).run(
                compiled.graph, registry=reg
            )
            for p in (1, 4, 8, 16)
        }
        assert len({r.value for r in times.values()}) == 1
        out[name] = {p: times[1].ticks / r.ticks for p, r in times.items()}
    return out


def test_dynamic_width_scales_past_hard_wired(benchmark, results, report):
    compiled, reg = dynamic_program()
    benchmark(
        lambda: SimulatedExecutor(uniform(8)).run(compiled.graph, registry=reg)
    )
    rows = [f"{'variant':<22}" + "".join(f"P={p:<6}" for p in (1, 4, 8, 16))]
    for name, curve in results.items():
        rows.append(
            f"{name:<22}" + "".join(f"{s:<8.2f}" for s in curve.values())
        )
    rows.append("")
    rows.append("hard-wired source text caps the fork at 4; the prelude's")
    rows.append("divide-and-conquer width is a run-time value (section 9.2).")
    report("Section 9.2 — hard-wired vs dynamic parallelism", "\n".join(rows))

    hard = results["hard-wired 4-way"]
    dyn = results["par_reduce (dynamic)"]
    # The four-piece split caps at four processors; the dynamic form keeps
    # scaling with the machine.
    assert hard[4] == pytest.approx(4.0, rel=0.1)
    assert hard[16] == pytest.approx(4.0, rel=0.1)
    assert dyn[8] == pytest.approx(8.0, rel=0.1)
    assert dyn[16] == pytest.approx(16.0, rel=0.15)


def test_both_forms_compute_the_same_value():
    (hard, hard_reg), (dyn, dyn_reg) = hard_wired_program(), dynamic_program()
    a = SimulatedExecutor(uniform(3)).run(hard.graph, registry=hard_reg).value
    b = SimulatedExecutor(uniform(3)).run(dyn.graph, registry=dyn_reg).value
    assert a == b == sum(i * i for i in range(N_LEAVES))
