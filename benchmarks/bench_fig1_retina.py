"""Figure 1: retina-simulation speedup on the (simulated) Cray Y-MP.

Paper: speedup over the sequential version, normalized to 1 — roughly 1,
2, 2, and 3.3 for one through four processors; "three processors perform
at almost exactly the same rate as two" because the computation is four
roughly equal tasks.
"""

import pytest

from repro.apps.retina import RetinaConfig, compile_retina
from repro.machine import SimulatedExecutor, cray_ymp

CONFIG = RetinaConfig()


@pytest.fixture(scope="module")
def compiled():
    return compile_retina(2, CONFIG)


@pytest.fixture(scope="module")
def curve(compiled):
    times = {}
    for p in (1, 2, 3, 4):
        result = SimulatedExecutor(cray_ymp(p)).run(
            compiled.graph, registry=compiled.registry
        )
        times[p] = result.ticks
    return {p: times[1] / t for p, t in times.items()}


def test_fig1_speedup_curve(benchmark, compiled, curve, report):
    benchmark(
        lambda: SimulatedExecutor(cray_ymp(4)).run(
            compiled.graph, registry=compiled.registry
        )
    )
    rows = ["processors   speedup   (paper)"]
    paper = {1: 1.0, 2: 2.0, 3: 2.0, 4: 3.3}
    for p, s in curve.items():
        rows.append(f"{p:>10}   {s:>7.2f}   ({paper[p]:.1f})")
    rows.append("")
    scale = 60 / 4.0  # chart full scale at speedup 4
    for p, s in curve.items():
        bar = "#" * int(round(s * scale))
        rows.append(f"P={p} |{bar:<60}| {s:.2f}")
    rows.append("      note the flat step from P=2 to P=3: four equal tasks")
    report("Figure 1 — Retina Simulation on Cray Y-MP (simulated)",
           "\n".join(rows))
    # Shape assertions: near-linear to 2, plateau at 3, >3 at 4.
    assert curve[2] == pytest.approx(2.0, abs=0.2)
    assert curve[3] == pytest.approx(curve[2], abs=0.25)
    assert 3.0 < curve[4] < 4.0


def test_fig1_v1_caps_near_two(benchmark, report):
    compiled = compile_retina(1, CONFIG)

    def run(p):
        return SimulatedExecutor(cray_ymp(p)).run(
            compiled.graph, registry=compiled.registry
        ).ticks

    t1 = run(1)
    t4 = benchmark(lambda: run(4))
    speedup = t1 / t4
    report(
        "Figure 1 companion — unbalanced v1",
        f"v1 speedup on 4 processors: {speedup:.2f} "
        "(paper: 'slightly less than two')",
    )
    assert speedup == pytest.approx(2.0, abs=0.25)
