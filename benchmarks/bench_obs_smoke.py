"""Observability smoke checks, small enough for CI.

Two guarantees from the deep-observability layer, exercised end to end:

* **Unsubscribed emits stay free through the context plumbing.**  A
  :class:`~repro.obs.runctx.RunContext` with every subscriber disabled
  carries a zero-subscriber bus, which ``resolve_bus`` must drop to
  ``None`` exactly as if no bus were passed — the ``run_ctx`` threading
  must not reopen the per-fire cost the zero-overhead contract closed.
  Measured: the retina model under such a context stays within the
  zero-subscriber budget of the bare run (interleaved best-of-batches,
  the ``test_obs_overhead`` method).

* **The black box works under fire.**  A supervised process run with a
  deterministic worker kill must leave a parseable flight-recorder dump
  naming the crash, the in-flight fire, and the queue state — the
  forensics a failed CI run would be debugged from.
"""

from __future__ import annotations

import gc
import json
import statistics
import time

import numpy as np

from repro import compile_source
from repro.apps.retina import RetinaConfig, compile_retina
from repro.faults import parse_fault_spec
from repro.obs import RunContext
from repro.runtime import (
    FaultPolicy,
    ProcessExecutor,
    SequentialExecutor,
    default_registry,
)

#: Interleaved bare/run-ctx pairs; the statistic is the *median of
#: per-pair ratios*.  Unlike the batch scheme of
#: ``tests/test_obs_overhead.py`` (simulated executor, low variance),
#: this workload runs real operator bodies, and on a busy CI box the
#: noise floor drifts over the test's lifetime; pairing adjacent runs
#: cancels the drift and the median discards outlier pairs.
PAIRS = 24
#: Same budget as ``tests/test_obs_overhead.py``.
MAX_OVERHEAD = 1.05


def test_unsubscribed_context_overhead_bounded():
    compiled = compile_retina(2, RetinaConfig())
    graph, registry = compiled.graph, compiled.registry

    def run_bare():
        SequentialExecutor().run(graph, registry=registry)

    def run_monitored():
        # Zero subscribers: resolve_bus must drop the context's bus and
        # leave the hot path identical to the bare run.
        ctx = RunContext(metrics=False, flight_recorder=False)
        SequentialExecutor(run_ctx=ctx).run(graph, registry=registry)

    run_bare()
    run_monitored()

    ratios = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(PAIRS):
            t0 = time.perf_counter()
            run_bare()
            bare = time.perf_counter() - t0
            t0 = time.perf_counter()
            run_monitored()
            monitored = time.perf_counter() - t0
            ratios.append(monitored / bare)
    finally:
        if gc_was_enabled:
            gc.enable()

    ratio = statistics.median(ratios)
    assert ratio < MAX_OVERHEAD, (
        f"zero-subscriber RunContext cost {(ratio - 1):.1%} wall time "
        f"(median of {PAIRS} interleaved pair ratios); budget is "
        f"{MAX_OVERHEAD - 1:.0%}"
    )


CRASH_SRC = """
main(n)
  let
    a = mkarr(n, 7)
    b = mkarr(n, 8)
  in add(total(a), total(b))
"""


def _crash_registry():
    reg = default_registry()

    @reg.register(pure=True, cost=2e6)
    def mkarr(n, seed):
        rng = np.random.default_rng(seed)
        return rng.standard_normal((n, n))

    @reg.register(pure=True, cost=2e6)
    def total(a):
        return float(a.sum())

    return reg


def test_chaos_crash_leaves_parseable_dump(tmp_path):
    reg = _crash_registry()
    compiled = compile_source(CRASH_SRC, registry=reg)
    ctx = RunContext("ci-chaos", flightrec_dir=str(tmp_path), metrics=False)
    executor = ProcessExecutor(
        2,
        cost_threshold=0.0,
        fault_policy=FaultPolicy(max_retries=4, backoff=0.0, max_respawns=64),
        fault_spec=parse_fault_spec("kill:op=total,nth=1"),
        run_ctx=ctx,
    )
    result = executor.run(compiled.graph, args=(24,), registry=reg)
    assert result.value is not None, "the supervised run must survive"

    doc = json.loads((tmp_path / "ci-chaos.flightrec.json").read_text())
    assert doc["trigger"]["type"] == "WorkerCrashed"
    assert any(e["type"] == "WorkerCrashed" for e in doc["events"])
    assert doc["snapshot"]["supervisor"]["in_flight"] >= 1
    assert "depths" in doc["snapshot"]["ready_queue"]
