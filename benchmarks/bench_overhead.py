"""Section 7 / section 1: runtime-system overhead.

Paper: the runtime "generally adds less than three percent overhead to the
running time of an application", and "on the Cray Y-MP, Delirium runtime
system overhead contributed less than one percent to the total execution
time of the retina model (on four processors)" — significant because that
graph includes closure creation and nested tail-recursive loops.

Overhead here is the modeled scheduler cost (dispatch ticks per task)
relative to total busy time.  The retina's operator grains are ~1M ticks,
so its ratio is tiny; a deliberately fine-grained stress program shows the
ratio growing as grains shrink — the trade the paper's operator-sizing
advice is about.
"""

import pytest

from repro import compile_source, default_registry
from repro.apps.retina import RetinaConfig, compile_retina
from repro.machine import SimulatedExecutor, cray_ymp


def test_overhead_retina_below_one_percent(benchmark, report):
    compiled = compile_retina(2, RetinaConfig())
    result = benchmark(
        lambda: SimulatedExecutor(cray_ymp(4)).run(
            compiled.graph, registry=compiled.registry
        )
    )
    report(
        "Section 7 — runtime overhead, retina on Cray Y-MP (P=4)",
        f"dispatch overhead: {result.overhead_fraction():.3%} of busy time\n"
        f"(paper: 'less than one percent'; the coordination graph includes\n"
        f"closure creation and nested tail-recursive loops)",
    )
    assert result.overhead_fraction() < 0.01


@pytest.mark.parametrize("grain_ticks", [100_000.0, 10_000.0, 2_000.0])
def test_overhead_vs_grain(grain_ticks, report):
    """Overhead fraction rises as operator grains shrink."""
    reg = default_registry()
    reg.register(name="work", pure=True, cost=grain_ticks)(lambda i: i)
    bindings = "\n      ".join(f"v{i} = work({i})" for i in range(16))
    acc = "v0"
    for i in range(1, 16):
        acc = f"add({acc}, v{i})"
    compiled = compile_source(
        f"main()\n  let {bindings}\n  in {acc}", registry=reg
    )
    result = SimulatedExecutor(cray_ymp(4)).run(
        compiled.graph, registry=reg
    )
    expected_ratio = cray_ymp().dispatch_ticks / grain_ticks
    report(
        f"Section 7 — overhead at grain {grain_ticks:.0f} ticks",
        f"overhead: {result.overhead_fraction():.2%} "
        f"(dispatch {cray_ymp().dispatch_ticks:.0f} per ~{grain_ticks:.0f}-tick op)",
    )
    # Coarse grains land under the paper's 3% envelope.
    if grain_ticks >= 100_000:
        assert result.overhead_fraction() < 0.03
    # The ratio tracks dispatch/grain (engine glue adds a little).
    assert result.overhead_fraction() < 4 * expected_ratio + 0.01


def test_overhead_fine_grain_stress(benchmark, report):
    """A call-heavy recursive program: the expensive case for any runtime."""
    compiled = compile_source(
        """
        main(n) count(0, n)
        count(i, n) if is_less(i, n) then count(incr(i), n) else i
        """
    )
    result = benchmark(
        lambda: SimulatedExecutor(cray_ymp(4)).run(compiled.graph, args=(200,))
    )
    report(
        "Section 7 — fine-grain stress (tail-recursive counting)",
        f"overhead: {result.overhead_fraction():.1%} — tiny builtin operators\n"
        "mean dispatch dominates; the paper's advice: size operators up.",
    )
    assert result.overhead_fraction() > 0.03  # the contrast case
