"""Fast codegen smoke: lowered retina vs interpreted recipes, CI-sized.

The full wall-clock benchmark (``bench_wallclock.py``) pins the
production-size overhead target; CI wants a sub-second check that the
codegen pass still (a) lowers the fused chains to generated source,
(b) leaves the result bit-identical to the interpreted recipes, and
(c) does not pay *more* master overhead than interpretation — the
generated functions exist purely to shed the per-step replay loop, so a
regression here means the lowering started costing instead of saving.
This is that check, at 32x32.
"""

from __future__ import annotations

import pytest

from repro.apps.retina import RetinaConfig, compile_retina
from repro.runtime import SequentialExecutor

TINY = RetinaConfig(height=32, width=32, num_iter=2)

#: Overhead comparison repeats: the tiny frame's overhead is tens of
#: microseconds per run, so each side keeps its best-of to shut out
#: scheduler noise.
REPEATS = 5


def _overhead(compiled) -> tuple[float, float]:
    """Best-of instrumented (overhead_seconds, instrumented_seconds)."""
    import time

    best = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        probe = SequentialExecutor(profile_ops=True).run(
            compiled.graph, registry=compiled.registry
        )
        elapsed = time.perf_counter() - t0
        overhead = max(elapsed - probe.stats.op_body_seconds, 0.0)
        if best is None or elapsed < best[1]:
            best = (overhead, elapsed)
    return best


@pytest.mark.parametrize("version", [1, 2])
def test_codegen_retina_smoke(version, report):
    interpreted = compile_retina(version, TINY, fuse=True, donate=True)
    lowered = compile_retina(
        version, TINY, fuse=True, donate=True, codegen=True
    )

    n_lowered = sum(
        1
        for template in lowered.graph.templates.values()
        for node in template.nodes
        if node.codegen is not None
    )
    assert n_lowered > 0, "codegen pass lowered no fused chains"
    assert all(
        node.codegen is None
        for template in interpreted.graph.templates.values()
        for node in template.nodes
    ), "interpreted graph must carry no generated source"

    ri = SequentialExecutor().run(
        interpreted.graph, registry=interpreted.registry
    )
    rl = SequentialExecutor().run(lowered.graph, registry=lowered.registry)
    assert rl.value.signature() == ri.value.signature(), (
        "codegen run diverged from interpreted recipes"
    )
    assert rl.stats.tasks_fired == ri.stats.tasks_fired, (
        "codegen must not change the firing schedule"
    )

    over_i, wall_i = _overhead(interpreted)
    over_l, wall_l = _overhead(lowered)
    # Equality-tolerant: at 32x32 both overheads are tiny; the guard is
    # against the lowered path *growing* overhead, with 25% headroom for
    # clock granularity on the microsecond-scale difference.
    assert over_l <= over_i * 1.25, (
        f"lowered chains must not cost more master overhead than "
        f"interpreted ones: {over_l:.6f}s vs {over_i:.6f}s"
    )

    report(
        f"Codegen smoke — retina v{version} at 32x32",
        f"{n_lowered} fused node(s) lowered to generated source; "
        f"overhead {over_i * 1e3:.2f}ms interpreted -> "
        f"{over_l * 1e3:.2f}ms codegen "
        f"(wall {wall_i * 1e3:.1f}ms -> {wall_l * 1e3:.1f}ms); "
        "results bit-identical, firing schedule unchanged",
    )
