"""Fast batching smoke: coalesced fires vs singletons, CI-sized.

The full wall-clock benchmark (``bench_wallclock.py``) pins the batching
PR's absolute targets on the production-size montecarlo workload; CI
wants a seconds-scale check that the batched path still (a) produces
bit-identical results on every executor, (b) strictly reduces the IPC
message count on the process executor (the win that exists even on one
CPU), and (c) does not cost wall-clock versus the unbatched path beyond
noise.  This is that check, at a small batch size.
"""

from __future__ import annotations

import time

from repro.apps.montecarlo.coordination import compile_pi
from repro.compiler.passes.pipeline import PASS_ORDER
from repro.runtime import (
    ProcessExecutor,
    SequentialExecutor,
    ThreadedExecutor,
)

N_BATCHES = 16
BATCH_SIZE = 20_000
COSTS = {"pi_batch": 0.004, "mc_combine": 1e-7, "mc_pi": 1e-7}

#: Wall-clock guard headroom: at this size a run is ~5 ms, so the guard
#: is deliberately loose — it catches a batched path that *costs* (a
#: regression back toward per-fire dispatch), not single-ms noise.
HEADROOM = 1.5
REPEATS = 5


def _best_of(make):
    best, result = None, None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = make()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_batching_smoke(report):
    compiled = compile_pi(
        seed=12,
        batch_size=BATCH_SIZE,
        optimize_passes=PASS_ORDER + ("fuse", "donate", "codegen", "batch"),
    )
    graph, registry = compiled.graph, compiled.registry
    args = (N_BATCHES,)

    ref = SequentialExecutor().run(graph, args=args, registry=registry)

    seq_batched = SequentialExecutor(batch=True).run(
        graph, args=args, registry=registry
    )
    assert seq_batched.value == ref.value, "sequential batched diverged"
    assert seq_batched.stats.fire_batches > 0, (
        "sequential batched run formed no batches"
    )

    thr = ThreadedExecutor(2, batch=True).run(
        graph, args=args, registry=registry
    )
    assert thr.value == ref.value, "threaded batched diverged"

    wall_b, proc_b = _best_of(
        lambda: ProcessExecutor(1, batch=True, measured_costs=COSTS).run(
            graph, args=args, registry=registry
        )
    )
    wall_p, proc_p = _best_of(
        lambda: ProcessExecutor(1, batch=False, measured_costs=COSTS).run(
            graph, args=args, registry=registry
        )
    )
    assert proc_b.value == ref.value, "process batched diverged"
    assert proc_p.value == ref.value, "process unbatched diverged"

    msgs_b = (
        proc_b.stats.ipc_messages_sent + proc_b.stats.ipc_messages_received
    )
    msgs_p = (
        proc_p.stats.ipc_messages_sent + proc_p.stats.ipc_messages_received
    )
    assert proc_b.stats.dispatched_fires == proc_p.stats.dispatched_fires, (
        "batching must not change which fires are dispatched"
    )
    assert msgs_b < msgs_p, (
        f"batching must strictly reduce IPC messages: {msgs_b} vs {msgs_p}"
    )
    assert proc_b.stats.fire_batches > 0, (
        "process batched run formed no remote batches"
    )

    assert wall_b <= wall_p * HEADROOM, (
        f"batched process run must be >= parity with unbatched "
        f"(x{HEADROOM} headroom): {wall_b:.4f}s vs {wall_p:.4f}s"
    )

    report(
        "Batching smoke — montecarlo pi, small",
        f"bit-identical on sequential/threaded/process; IPC messages "
        f"{msgs_p} -> {msgs_b} "
        f"({msgs_p / max(msgs_b, 1):.1f}x fewer), wall "
        f"{wall_p * 1e3:.1f}ms unbatched -> {wall_b * 1e3:.1f}ms batched "
        f"({proc_b.stats.fire_batches} batch(es), "
        f"{proc_b.stats.batched_fires} coalesced fire(s))",
    )
