"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one table or figure from the
paper's evaluation (see DESIGN.md section 6 for the index).  Benchmarks
print their reproduction tables straight to the terminal (bypassing
pytest's capture) so that ``pytest benchmarks/ --benchmark-only | tee``
produces a self-contained record, and use the ``benchmark`` fixture to
time the core operation of each experiment.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a block of experiment output, bypassing capture."""

    def emit(title: str, body: str) -> None:
        with capsys.disabled():
            print()
            print(f"┌── {title} " + "─" * max(0, 66 - len(title)))
            for line in body.splitlines():
                print(f"│ {line}")
            print("└" + "─" * 70)

    return emit
