"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one table or figure from the
paper's evaluation (see DESIGN.md section 6 for the index).  Benchmarks
print their reproduction tables straight to the terminal (bypassing
pytest's capture) so that ``pytest benchmarks/ --benchmark-only | tee``
produces a self-contained record, and use the ``benchmark`` fixture to
time the core operation of each experiment.
"""

from __future__ import annotations

import json
import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="FILE",
        help="append machine-readable benchmark results to this JSON file "
        "(a dict keyed by benchmark name; merged with existing content)",
    )


@pytest.fixture
def bench_json(request):
    """Record a benchmark's structured result under a key.

    With ``--bench-json FILE``, results accumulate into ``FILE`` (one
    top-level key per benchmark, later runs overwrite the same key).
    Without the option the recorder is a no-op, so benchmarks can call it
    unconditionally.  Returns the path written, or None.
    """
    path = request.config.getoption("--bench-json")

    def record(key: str, payload) -> str | None:
        if path is None:
            return None
        data = {}
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    data = json.load(fh)
            except (OSError, ValueError):
                data = {}
        data[key] = payload
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    return record


@pytest.fixture
def report(capsys):
    """Print a block of experiment output, bypassing capture."""

    def emit(title: str, body: str) -> None:
        with capsys.disabled():
            print()
            print(f"┌── {title} " + "─" * max(0, 66 - len(title)))
            for line in body.splitlines():
                print(f"│ {line}")
            print("└" + "─" * 70)

    return emit
