"""Memory-path smoke checks, small enough for CI.

Three guarantees of the zero-copy memory path, each on a workload sized
to finish in well under a second:

* a fully-donatable chain of ``modifies`` operators runs with **zero**
  copy-on-write copies — every donated argument is mutated in place, and
  switching donation off changes nothing about the result;
* a copy-on-write forced by genuine sharing draws its destination buffer
  from the engine's free-list pool when a same-shape donated buffer died
  earlier in the run (``np.copyto`` into recycled memory, not a fresh
  allocation);
* peak RSS stays flat across 100 retina iterations — the activation and
  buffer free lists recycle instead of accumulating.

The programs are synthetic (registered inline) because they need exact
control over sharing: the retina's operators traffic in slab *objects*,
whose buffers the pool deliberately refuses.
"""

from __future__ import annotations

import resource

import numpy as np
import pytest

from repro.apps.retina import RetinaConfig, compile_retina
from repro.compiler import compile_source
from repro.compiler.passes.pipeline import PASS_ORDER
from repro.runtime import SequentialExecutor
from repro.runtime.operators import OperatorRegistry, default_registry

N = 65_536  # doubles per array; 512 KiB buffers

#: Four in-place increments over one donated buffer.
CHAIN = """
main(n)
  bump(bump(bump(bump(make_array(n)))))
"""

#: Phase 1 (x, k) donates and kills a buffer; phase 2 (s, t) forces a
#: genuine COW — ``s`` is consumed by both ``bump`` and ``asum`` — whose
#: destination must come from the pool.  ``k`` feeding ``ones_seeded``
#: sequences phase 2 strictly after phase 1.
POOL = """
main(n)
  let x = bump(make_array(n))
      k = checksum(x)
      s = ones_seeded(n, k)
      t = bump(s)
  in asum(t, s)
"""

DONATING_PASSES = PASS_ORDER + ("fuse", "donate")


def _registry() -> OperatorRegistry:
    reg = default_registry()
    local = OperatorRegistry()

    @local.register(name="make_array", pure=True, cost=100.0)
    def make_array(n):
        return np.zeros(int(n), dtype=np.float64)

    @local.register(name="ones_seeded", pure=True, cost=100.0)
    def ones_seeded(n, seed):
        return np.ones(int(n), dtype=np.float64) * float(seed)

    @local.register(name="checksum", pure=True, cost=100.0)
    def checksum(a):
        return float(a.sum()) + 1.0

    @local.register(name="bump", modifies=(0,), cost=100.0)
    def bump(a):
        a += 1.0
        return a

    @local.register(name="asum", pure=True, cost=100.0)
    def asum(a, b):
        return float(a.sum() + b.sum())

    return reg.merged_with(local)


def _run(source: str, passes=DONATING_PASSES):
    prog = compile_source(source, registry=_registry(), optimize_passes=passes)
    return SequentialExecutor().run(
        prog.graph, args=(N,), registry=prog.registry
    )


def test_donatable_chain_has_zero_cow_copies():
    result = _run(CHAIN)
    stats = result.stats
    assert stats.cow_copies == 0, "donated chain must never COW"
    assert stats.copies_avoided == 4, "each bump hands its buffer over"
    assert stats.in_place_writes == 4
    assert stats.donation_misses == 0

    undonated = _run(CHAIN, passes=PASS_ORDER + ("fuse",))
    assert undonated.stats.copies_avoided == 0
    np.testing.assert_array_equal(result.value, undonated.value)


def test_cow_draws_from_recycled_donated_buffer():
    result = _run(POOL)
    stats = result.stats
    assert stats.cow_copies == 1, "shared s must COW exactly once"
    assert stats.buffers_recycled == 1, (
        "the COW destination must be x's recycled buffer, not a fresh "
        "allocation"
    )
    assert stats.buffer_bytes_recycled == N * 8
    assert stats.copies_avoided >= 1  # the donated bump over x
    # sum(t) + sum(s) with s = ones * (N + 1) and t = s + 1.
    assert result.value == float(2 * N * (N + 1) + N)


#: 100 total retina iterations, run as 20 five-iteration programs so the
#: growth window also covers executor setup/teardown churn.
RSS_CONFIG = RetinaConfig(height=64, width=64, kernel_size=5, num_iter=5)
RSS_RUNS = 20
#: Allowed peak-RSS growth across the window.  A real leak — one 32 KiB
#: slab chain per iteration — costs several MiB over 100 iterations;
#: allocator noise stays well under this.
RSS_BOUND_KIB = 24 * 1024


def test_retina_rss_growth_bounded():
    prog = compile_retina(2, RSS_CONFIG, fuse=True, donate=True)
    graph, registry = prog.graph, prog.registry

    def run_once():
        return SequentialExecutor().run(graph, registry=registry)

    baseline_result = run_once()  # warm allocator, import caches, pools
    run_once()
    baseline_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    for _ in range(RSS_RUNS):
        result = run_once()
    growth = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss - baseline_kib
    assert result.value.signature() == baseline_result.value.signature()
    assert growth <= RSS_BOUND_KIB, (
        f"peak RSS grew {growth} KiB over {RSS_RUNS * RSS_CONFIG.num_iter} "
        f"retina iterations (bound: {RSS_BOUND_KIB} KiB)"
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
