"""Section 5.2: the node-timing dumps and the load-balance narrative.

Paper, v1 (ticks of the Cray-2 clock)::

    call of convol_split took 10013
    call of convol_bite took 1059919 / 1135594 / 1060799 / 1062540
    call of post_up took 45672 ... call of post_up took 4070365

"Roughly half of its invocations executed in negligible time while half
took as long as all the convolutions combined.  In the latter case, we
could achieve at most a speedup of two."  After rebalancing (v2)::

    call of update_split took 16195
    call of update_bite took 952171 / 952589 / 1171466 / 953576
    call of done_up took 43239
"""

import pytest

from repro.apps.retina import RetinaConfig, compile_retina
from repro.machine import SimulatedExecutor, cray_2
from repro.tools import load_balance_summary, node_timing_report

CONFIG = RetinaConfig()


def traced_run(version: int):
    compiled = compile_retina(version, CONFIG)
    return SimulatedExecutor(cray_2(4), trace=True).run(
        compiled.graph, registry=compiled.registry
    )


def test_sec52_v1_dump_shows_post_up_bottleneck(benchmark, report):
    result = benchmark(lambda: traced_run(1))
    assert result.tracer is not None
    dump = node_timing_report(
        result.tracer, include={"convol_split", "convol_bite", "post_up"}
    )
    summary = load_balance_summary(
        result.tracer, include={"convol_bite", "post_up"}
    )
    report(
        "Section 5.2 — v1 node timings (simulated Cray-2 ticks)",
        "\n".join(dump.splitlines()[:12]) + "\n...\n" + summary.describe(),
    )
    assert summary.bottleneck == "post_up"
    # Half the post_up calls negligible, half as big as all convolutions.
    post_ups = sorted(
        r.ticks for r in result.tracer.op_records() if r.label == "post_up"
    )
    cheap, expensive = post_ups[: len(post_ups) // 2], post_ups[len(post_ups) // 2 :]
    convol_total_per_slab = sum(
        r.ticks for r in result.tracer.op_records() if r.label == "convol_bite"
    ) / (CONFIG.num_iter * (CONFIG.final_slab - CONFIG.start_slab))
    assert max(cheap) < 0.1 * min(expensive)
    assert min(expensive) == pytest.approx(convol_total_per_slab, rel=0.15)


def test_sec52_v2_dump_is_balanced(benchmark, report):
    result = benchmark(lambda: traced_run(2))
    assert result.tracer is not None
    dump = node_timing_report(
        result.tracer, include={"update_split", "update_bite", "done_up"}
    )
    summary = load_balance_summary(
        result.tracer,
        include={"convol_bite", "update_split", "update_bite", "done_up"},
    )
    report(
        "Section 5.2 — v2 node timings after rebalancing",
        "\n".join(dump.splitlines()[:8]) + "\n...\n" + summary.describe(),
    )
    # "almost perfect balance": no single node dominates a slab.
    assert summary.imbalance_ratio < 2.0
