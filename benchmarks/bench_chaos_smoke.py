"""Chaos smoke checks, small enough for CI.

The ISSUE 5 fault-tolerance layer exercised on the two case-study apps:
retina (mutable slab state, fused + donated graphs) and the Monte-Carlo
π estimator (pure fan-out/reduce), each run under the supervised process
executor with

* worker SIGKILLs at p=0.05 (deterministic, seeded), and
* one forced per-fire timeout (a 30 s injected delay under a sub-second
  timeout budget — the hung worker is killed and the fire re-dispatched),

asserting that the run completes, the result is bit-identical to the
fault-free run, the fault counters actually saw the injected faults, and
no shared-memory segment outlives the run.
"""

from __future__ import annotations

import os

import pytest

from repro.apps.montecarlo import compile_pi
from repro.apps.retina import RetinaConfig, compile_retina
from repro.faults import parse_fault_spec
from repro.runtime import FaultPolicy, ProcessExecutor, SequentialExecutor

WORKERS = 3

#: Worker kills on 5% of operator calls, plus one 30-second stall on the
#: first call the clause sees — forced past the 0.75 s per-fire budget.
CHAOS_SPEC = "kill:p=0.05,seed=7;delay:nth=1,seconds=30"
CHAOS_POLICY = FaultPolicy(
    max_retries=6, timeout=0.75, backoff=0.0, max_respawns=64
)


def _shm_entries() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - non-tmpfs platforms
        return set()


def _chaos_run(graph, registry):
    executor = ProcessExecutor(
        WORKERS,
        cost_threshold=0.0,
        shm_threshold=1024,
        fault_policy=CHAOS_POLICY,
        fault_spec=parse_fault_spec(CHAOS_SPEC),
    )
    return executor.run(graph, registry=registry)


def test_retina_survives_chaos():
    prog = compile_retina(
        2, RetinaConfig(height=32, width=32, kernel_size=5, num_iter=2),
        fuse=True, donate=True,
    )
    fault_free = SequentialExecutor().run(prog.graph, registry=prog.registry)
    before = _shm_entries()
    result = _chaos_run(prog.graph, prog.registry)
    assert result.value.signature() == fault_free.value.signature()
    stats = result.stats
    assert stats.worker_crashes >= 1, "the kill clause never fired"
    assert stats.fires_timed_out >= 1, "the forced timeout never fired"
    assert stats.fires_retried >= stats.worker_crashes
    assert _shm_entries() <= before, "leaked shared-memory segments"
    from repro.runtime.workers import cleanup_arenas

    assert cleanup_arenas() == 0, "live arenas left for the atexit reaper"


def test_montecarlo_survives_chaos():
    prog = compile_pi(seed=2026, batch_size=512)
    fault_free = SequentialExecutor().run(
        prog.graph, args=(16,), registry=prog.registry
    )
    before = _shm_entries()
    executor = ProcessExecutor(
        WORKERS,
        cost_threshold=0.0,
        shm_threshold=1024,
        fault_policy=CHAOS_POLICY,
        fault_spec=parse_fault_spec(CHAOS_SPEC),
    )
    result = executor.run(prog.graph, args=(16,), registry=prog.registry)
    assert result.value == fault_free.value
    assert result.stats.worker_crashes >= 1
    assert result.stats.fires_timed_out >= 1
    assert _shm_entries() <= before, "leaked shared-memory segments"
    from repro.runtime.workers import cleanup_arenas

    assert cleanup_arenas() == 0, "live arenas left for the atexit reaper"


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
