"""Fast locality smoke: ref-shipped fan-out vs full encodings, CI-sized.

The wall-clock benchmark (``bench_wallclock.py``) records the affinity
rows on the production-size workloads; CI wants a seconds-scale check
that the locality layer still (a) produces bit-identical results,
(b) cuts the encoded wire bytes of a fan-out/fan-in shape by at least
2x versus ``--affinity none`` (the win that exists even on one worker:
the shared block crosses the wire at most once instead of once per
consumer), and (c) leaves the critical-path profiler reconciling — the
locality layer must not distort the observability story it is measured
by.  This is that check.
"""

from __future__ import annotations

import numpy as np

from repro import compile_source
from repro.obs import RunContext
from repro.obs.critpath import RECONCILIATION_TOLERANCE
from repro.runtime import ProcessExecutor, SequentialExecutor, default_registry

FAN = 6
BLOCK_ELEMS = 25_000  # 200 KB of float64 per ship avoided
COSTS = {"fan_produce": 0.05, "fan_stage": 0.05}


def _registry():
    reg = default_registry()

    @reg.register(name="fan_produce", pure=True)
    def fan_produce(seed):
        rng = np.random.default_rng(seed)
        return rng.standard_normal(BLOCK_ELEMS)

    @reg.register(name="fan_stage", pure=True)
    def fan_stage(a, k):
        return float((a * k).sum())

    return reg


def _fanout_source():
    stages = "\n".join(
        f"      s{i} = fan_stage(blk, {i})" for i in range(1, FAN + 1)
    )
    acc = "s1"
    for i in range(2, FAN + 1):
        acc = f"add({acc}, s{i})"
    return f"main(seed)\n  let blk = fan_produce(seed)\n{stages}\n  in {acc}\n"


def _run(compiled, registry, affinity, ctx=None):
    return ProcessExecutor(
        1,
        measured_costs=COSTS,
        affinity=affinity,
        run_ctx=ctx,
    ).run(compiled.graph, args=(13,), registry=registry)


def test_affinity_smoke(report, bench_json):
    registry = _registry()
    compiled = compile_source(_fanout_source(), registry=registry)
    ref = SequentialExecutor().run(
        compiled.graph, args=(13,), registry=registry
    )

    none = _run(compiled, registry, "none")
    data = _run(compiled, registry, "data")

    # Zero parity drift: the locality layer may only change *transport*.
    assert none.value == ref.value, "affinity=none diverged from sequential"
    assert data.value == ref.value, "affinity=data diverged from sequential"

    enc_none = none.stats.encode_bytes
    enc_data = data.stats.encode_bytes
    assert none.stats.blocks_ref_shipped == 0
    assert data.stats.blocks_ref_shipped >= FAN - 1, (
        f"fan-out must ref-ship the shared block: "
        f"{data.stats.blocks_ref_shipped} refs"
    )
    assert data.stats.affinity_misses == 0, "no miss expected on one worker"
    assert data.stats.encode_bytes_avoided > 0
    assert enc_none >= 2 * enc_data, (
        f"affinity=data must encode at most half the wire bytes of "
        f"affinity=none on the fan-out: {enc_data} vs {enc_none}"
    )

    # The profiler still reconciles on an affinity-enabled run.
    ctx = RunContext(record_events=True, flight_recorder=False)
    profiled = _run(compiled, registry, "data", ctx=ctx)
    assert profiled.value == ref.value
    crit = ctx.critical_path(profiled.wall_seconds)
    assert crit.reconciliation_error <= RECONCILIATION_TOLERANCE, (
        f"critical path no longer reconciles under affinity: "
        f"{crit.reconciliation_error:.3f}"
    )

    bench_json(
        "affinity_smoke",
        {
            "fan": FAN,
            "block_bytes": BLOCK_ELEMS * 8,
            "encode_bytes_none": enc_none,
            "encode_bytes_data": enc_data,
            "encode_bytes_avoided": data.stats.encode_bytes_avoided,
            "blocks_ref_shipped": data.stats.blocks_ref_shipped,
            "reduction_factor": enc_none / max(enc_data, 1),
        },
    )
    report(
        "Affinity smoke — fan-out/fan-in, small",
        f"bit-identical under none/data; encoded wire bytes "
        f"{enc_none} -> {enc_data} "
        f"({enc_none / max(enc_data, 1):.1f}x fewer), "
        f"{data.stats.blocks_ref_shipped} ref-shipped block read(s), "
        f"{data.stats.encode_bytes_avoided} bytes avoided; critical path "
        f"reconciles at {crit.reconciliation_error:.3f} "
        f"(tolerance {RECONCILIATION_TOLERANCE})",
    )
