"""Fast fusion smoke: tiny fused retina, CI-sized.

The full wall-clock benchmark (``bench_wallclock.py``) runs a
production-ish frame and takes seconds; CI wants a sub-second check that
the fusion pass still (a) removes nodes from the retina graphs, (b) fires
strictly fewer engine tasks, and (c) leaves the result bit-identical to
the unfused run.  This is that check, at 32x32.
"""

from __future__ import annotations

import pytest

from repro.apps.retina import RetinaConfig, compile_retina
from repro.runtime import SequentialExecutor

TINY = RetinaConfig(height=32, width=32, num_iter=2)


@pytest.mark.parametrize("version", [1, 2])
def test_fused_retina_smoke(version, report):
    plain = compile_retina(version, TINY)
    fused = compile_retina(version, TINY, fuse=True)
    assert fused.graph.total_nodes() < plain.graph.total_nodes()

    rp = SequentialExecutor().run(plain.graph, registry=plain.registry)
    rf = SequentialExecutor().run(fused.graph, registry=fused.registry)
    assert rf.value.signature() == rp.value.signature()
    assert rf.stats.tasks_fired < rp.stats.tasks_fired
    assert rf.stats.fused_fires > 0

    report(
        f"Fusion smoke — retina v{version} at 32x32",
        f"nodes {plain.graph.total_nodes()} -> {fused.graph.total_nodes()}; "
        f"task firings {rp.stats.tasks_fired} -> {rf.stats.tasks_fired}; "
        f"fused fires {rf.stats.fused_fires} "
        f"(saved {rf.stats.fused_ops_saved} source firings); "
        "results bit-identical",
    )
