"""Quickstart: embed Python operators in a Delirium coordination framework.

This walks the paper's introductory fork-join (section 2.1): four
convolutions run in parallel between an init and a terminal reduction.
The sequential sub-computations are ordinary Python functions; everything
about *coordination* — what may run in parallel, what must wait — lives in
six lines of Delirium.

Run:  python examples/quickstart.py
"""

from repro import (
    SequentialExecutor,
    SimulatedExecutor,
    ThreadedExecutor,
    ascii_framework,
    compile_source,
    cray_ymp,
    default_registry,
)

# 1. Register the sequential operators (the "existing C/Fortran code").
registry = default_registry()


@registry.register(cost=5_000.0)
def init_fn():
    """Produce the input data set."""
    return list(range(1_000))


@registry.register(pure=True, cost=100_000.0)
def convolve(data, phase):
    """A stand-in compute kernel: weighted sum with a phase offset."""
    return sum((x + phase) * (i % 7) for i, x in enumerate(data))


@registry.register(pure=True, cost=1_000.0)
def term_fn(a, b, c, d):
    """Join the four partial results."""
    return a + b + c + d


# 2. The coordination framework — the paper's own example, verbatim.
SOURCE = """
main()
  let
     a_start = init_fn()
     a = convolve(a_start, 0)
     b = convolve(a_start, 1)
     c = convolve(a_start, 2)
     d = convolve(a_start, 3)
  in term_fn(a, b, c, d)
"""


def main() -> None:
    program = compile_source(SOURCE, registry=registry)

    print("=== the coordination framework (note the 4-wide layer) ===")
    print(ascii_framework(program.graph, entry_only=True))

    # 3. Debug sequentially (the paper's workflow: develop on one
    # processor, deploy on many — results are guaranteed identical).
    seq = SequentialExecutor().run(program.graph, registry=registry)
    print(f"sequential result:       {seq.value}")

    thr = ThreadedExecutor(4).run(program.graph, registry=registry)
    print(f"threaded result (4 wkr): {thr.value}")
    assert thr.value == seq.value

    # 4. Measure on a simulated 4-processor Cray Y-MP.
    for p in (1, 2, 3, 4):
        sim = SimulatedExecutor(cray_ymp(p)).run(program.graph, registry=registry)
        assert sim.value == seq.value
        print(
            f"simulated Y-MP P={p}: {sim.ticks:>9.0f} ticks "
            f"(utilization {sim.utilization():.0%})"
        )
    print("note the plateau at P=3: four equal tasks cannot use a third "
          "processor (the paper's figure-1 phenomenon).")


if __name__ == "__main__":
    main()
