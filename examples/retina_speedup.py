"""The retina case study end to end (section 5 and figure 1).

Reproduces the whole narrative:

1. run the first parallelization (v1) and discover — via node timings,
   like the authors did — that ``post_up`` serializes the computation;
2. run the balanced version (v2) and see the timings even out;
3. sweep processors on the simulated Cray Y-MP for the figure-1 curve;
4. verify v1, v2, and a plain sequential loop agree bit-for-bit.

Run:  python examples/retina_speedup.py
"""

from repro.apps.retina import RetinaConfig, compile_retina, run_sequential
from repro.machine import SimulatedExecutor, cray_2, cray_ymp, speedup_curve
from repro.runtime import SequentialExecutor
from repro.tools import load_balance_summary, node_timing_report


def main() -> None:
    config = RetinaConfig()

    print("=== step 1: first parallelization (v1), node timings ===")
    v1 = compile_retina(1, config)
    traced = SimulatedExecutor(cray_2(4), trace=True).run(
        v1.graph, registry=v1.registry
    )
    assert traced.tracer is not None
    report = node_timing_report(
        traced.tracer, include={"convol_split", "convol_bite", "post_up"}
    )
    print("\n".join(report.splitlines()[:10]))
    print("...")
    summary = load_balance_summary(
        traced.tracer, include={"convol_bite", "post_up"}
    )
    print(summary.describe())
    print()

    print("=== step 2: the balanced version (v2) ===")
    v2 = compile_retina(2, config)
    traced2 = SimulatedExecutor(cray_2(4), trace=True).run(
        v2.graph, registry=v2.registry
    )
    assert traced2.tracer is not None
    summary2 = load_balance_summary(
        traced2.tracer, include={"update_split", "update_bite", "done_up"}
    )
    print(summary2.describe())
    print()

    print("=== step 3: figure 1 — speedup on the simulated Cray Y-MP ===")
    for label, compiled in (("v1 (unbalanced)", v1), ("v2 (balanced)", v2)):
        curve = speedup_curve(
            compiled.graph, cray_ymp(), [1, 2, 3, 4], registry=compiled.registry
        )
        series = "  ".join(f"P={p}: {s:.2f}" for p, s in curve.items())
        print(f"{label:<17} {series}")
    print("(paper: ~1, ~2, ~2, 3.3 for the balanced version)")
    print()

    print("=== step 4: determinism check ===")
    small = RetinaConfig(height=32, width=32, num_iter=2)
    oracle = run_sequential(small).signature()
    for version in (1, 2):
        compiled = compile_retina(version, small)
        value = SequentialExecutor().run(
            compiled.graph, registry=compiled.registry
        ).value
        assert value.signature() == oracle
    print("v1 == v2 == plain sequential loop, bit-for-bit.")


if __name__ == "__main__":
    main()
