"""The visualization and analysis tools, end to end.

The paper's environment ships "a visualization tool for coordination
frameworks" and "various tools for analyzing and improving execution
speed."  This example points all of them at the retina case study:

1. the ASCII framework rendering (read the parallel topology off the
   compiled templates — the four-wide bite layers are unmissable);
2. Graphviz DOT output (pipe into ``dot -Tpng`` if available);
3. a per-processor Gantt timeline of the v1 run, where the ``post_up``
   bottleneck shows up as three idle processor rows;
4. the before/after comparison report of v1 vs v2 — the section 5.2
   tuning step as one table.

Run:  python examples/visualize_framework.py
"""

from repro import ascii_framework, to_dot
from repro.apps.retina import RetinaConfig, compile_retina
from repro.machine import SimulatedExecutor, cray_2
from repro.tools import gantt
from repro.tools.compare_runs import compare


def main() -> None:
    config = RetinaConfig(num_iter=1)
    v1 = compile_retina(1, config)
    v2 = compile_retina(2, config)

    print("=== 1. the coordination framework (v2 do_convol slab loop) ===")
    art = ascii_framework(v2.graph)
    # Show just the inner-loop arm where the double fork-join lives.
    sections = art.split("=== ")
    for section in sections:
        if "update_bite" in section:
            print("=== " + section)
            break

    print("=== 2. DOT (first lines; pipe the full output to graphviz) ===")
    print("\n".join(to_dot(v2.graph).splitlines()[:6]))
    print("    ...")
    print()

    print("=== 3. Gantt of the unbalanced v1 on the simulated Cray-2 ===")
    run_v1 = SimulatedExecutor(cray_2(4), trace=True).run(
        v1.graph, registry=v1.registry
    )
    assert run_v1.tracer is not None
    print(gantt(run_v1.tracer, 4, width=68))
    print("    (the long solitary 'o' spans are post_up: while one")
    print("     processor runs it, the other rows show '.' — idle.")
    print("     That is the section 5.2 diagnosis, visually.)")
    print()

    print("=== 4. v1 vs v2: the tuning step as a report ===")
    run_v2 = SimulatedExecutor(cray_2(4), trace=True).run(
        v2.graph, registry=v2.registry
    )
    # The two versions compute the identical state; compare() verifies it.
    run_v1_cmp = run_v1
    report = _compare_signatures(run_v1_cmp, run_v2)
    print(report)


def _compare_signatures(run_v1, run_v2):
    """compare() wants equal values; retina states compare by signature."""

    class _Proxy:
        def __init__(self, run):
            self.value = run.value.signature()
            self.ticks = run.ticks
            self.tracer = run.tracer
            self.traffic = run.traffic
            self.stats = run.stats

    return compare(_Proxy(run_v1), _Proxy(run_v2)).describe()


if __name__ == "__main__":
    main()
