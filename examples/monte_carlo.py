"""Monte-Carlo simulation under Delirium (the section 2 workload).

Estimates π and prices a European call option with batch-parallel
Monte-Carlo.  Each batch's random stream is derived from (seed, batch
index) — counter-based — and the reduction tree is a function of the batch
range, so the estimates are **bit-identical on every executor, machine,
and schedule**: reproducible stochastic computing, which is exactly what
the paper's deterministic coordination model buys a scientist.

Run:  python examples/monte_carlo.py [n_batches]
"""

import math
import sys

from repro.apps.montecarlo import OptionSpec, compile_option, compile_pi
from repro.machine import SimulatedExecutor, cray_ymp, uniform
from repro.runtime import SequentialExecutor, ThreadedExecutor


def main() -> None:
    n_batches = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    batch_size = 4096

    print(f"=== dartboard pi: {n_batches} batches x {batch_size} samples ===")
    pi_program = compile_pi(batch_size=batch_size)
    estimates = {
        "sequential": SequentialExecutor(),
        "threaded(4)": ThreadedExecutor(4),
        "simulated cray Y-MP(4)": SimulatedExecutor(cray_ymp(4)),
    }
    reference = None
    for name, executor in estimates.items():
        value = executor.run(
            pi_program.graph, args=(n_batches,), registry=pi_program.registry
        ).value
        reference = reference if reference is not None else value
        marker = "==" if value == reference else "!!"
        print(f"  {name:<24} {value:.6f}  {marker} bit-identical")
    assert reference is not None
    print(f"  true pi                  {math.pi:.6f} "
          f"(error {abs(reference - math.pi):.4f})")

    print()
    spec = OptionSpec()
    print(f"=== European call: S={spec.spot} K={spec.strike} "
          f"r={spec.rate} sigma={spec.volatility} T={spec.maturity} ===")
    option_program = compile_option(spec=spec, batch_size=batch_size)
    price = SequentialExecutor().run(
        option_program.graph, args=(n_batches,),
        registry=option_program.registry,
    ).value
    print(f"  Monte-Carlo price: {price:.4f}")
    print(f"  Black-Scholes:     {spec.closed_form():.4f}")

    print()
    print("=== scaling (simulated, batch fan-out is a run-time value) ===")
    base = None
    for p in (1, 2, 4, 8):
        ticks = SimulatedExecutor(uniform(p)).run(
            pi_program.graph, args=(n_batches,), registry=pi_program.registry
        ).ticks
        base = base or ticks
        print(f"  P={p:<2} speedup {base / ticks:5.2f}")


if __name__ == "__main__":
    main()
