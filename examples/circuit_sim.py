"""Level-parallel logic simulation under Delirium (section 4 application).

Builds a random levelized circuit, simulates it with the Delirium
coordination (each level's gates split four ways), checks the outputs
against a direct evaluation, and shows how speedup tracks level width.

Run:  python examples/circuit_sim.py
"""

from repro.apps.circuit import (
    compile_circuit_sim,
    evaluate_sequential,
    random_circuit,
)
from repro.machine import SimulatedExecutor, sequent, speedup_curve
from repro.runtime import SequentialExecutor


def main() -> None:
    circuit = random_circuit(n_inputs=32, n_gates=600, n_outputs=16, seed=5)
    print(circuit.describe())

    program = compile_circuit_sim(circuit)
    result = SequentialExecutor().run(program.graph, registry=program.registry)
    oracle = tuple(int(v) for v in evaluate_sequential(circuit))
    assert result.value == oracle
    print(f"outputs: {''.join(map(str, result.value))} (match the oracle)")
    print(f"in-place value-array updates: {result.stats.in_place_writes} "
          "(the merge never copies: single reference at merge time)")

    curve = speedup_curve(
        program.graph, sequent(1), [1, 2, 4], registry=program.registry
    )
    print("speedup on simulated Sequent:",
          ", ".join(f"P={p}: {s:.2f}" for p, s in curve.items()))
    print("(bounded by level width: narrow levels serialize, like the "
          "paper's discussion of hard-wired parallelism in section 9.2)")


if __name__ == "__main__":
    main()
