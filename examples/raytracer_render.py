"""Ray tracing under Delirium coordination (the section 4 application).

Renders a short animation with scanline bands traced in parallel, verifies
the image against a direct render, writes the final frame as a PPM file,
and sweeps processors on the simulated Sequent.

Run:  python examples/raytracer_render.py [out.ppm]
"""

import sys

import numpy as np

from repro.apps.raytracer import compile_raytracer, render_animation_sequential
from repro.machine import SimulatedExecutor, sequent, speedup_curve
from repro.runtime import SequentialExecutor


def write_ppm(path: str, image: np.ndarray) -> None:
    """Write an (H, W, 3) float image as a binary PPM."""
    data = (np.clip(image, 0, 1) * 255).astype(np.uint8)
    header = f"P6\n{image.shape[1]} {image.shape[0]}\n255\n".encode()
    with open(path, "wb") as fh:
        fh.write(header + data.tobytes())


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "raytraced.ppm"
    width, height, frames = 160, 100, 3

    program = compile_raytracer(
        width=width, height=height, n_spheres=7, n_frames=frames
    )
    result = SequentialExecutor().run(program.graph, registry=program.registry)
    film = result.value
    oracle = render_animation_sequential(
        width=width, height=height, n_spheres=7, n_frames=frames
    )
    assert np.array_equal(film, oracle), "band render diverged from oracle"
    print(f"rendered {frames} frames at {width}x{height}; "
          f"final frame matches the direct render exactly")

    write_ppm(out, film)
    print(f"wrote {out}")

    curve = speedup_curve(
        program.graph, sequent(1), [1, 2, 4], registry=program.registry
    )
    print("speedup on simulated Sequent:",
          ", ".join(f"P={p}: {s:.2f}" for p, s in curve.items()))


if __name__ == "__main__":
    main()
