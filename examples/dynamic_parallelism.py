"""The section 9.2 extension: parallelism that is not hard-wired.

The paper's self-critique: the four-way splits in every listing are fixed
in the source text and "cannot take into account the load of the system."
Their follow-up generalized the language with coordination structures;
this reproduction provides the same power as a prelude of first-class,
recursive Delirium combinators (``par_index_map``, ``par_reduce``,
``par_split``) whose fan-out is a run-time value.

Run:  python examples/dynamic_parallelism.py
"""

from repro import compile_source, default_registry
from repro.machine import SimulatedExecutor, uniform

registry = default_registry()


@registry.register(pure=True, cost=100_000.0)
def simulate_cell(i):
    """A stand-in for one grid cell's physics."""
    x = float(i)
    for _ in range(10):
        x = (x * x + 1.0) % 97.0
    return x


PROGRAM = """
main(n_cells) par_reduce(add, simulate_cell, 0, n_cells)
"""


def main() -> None:
    program = compile_source(PROGRAM, registry=registry, prelude=True)

    print("the same program text, growing with the machine:")
    n_cells = 32
    baseline = None
    for p in (1, 2, 4, 8, 16, 32):
        result = SimulatedExecutor(uniform(p)).run(
            program.graph, args=(n_cells,), registry=registry
        )
        baseline = baseline or result.ticks
        print(
            f"  P={p:<3} {result.ticks / 1e6:7.3f}M ticks   "
            f"speedup {baseline / result.ticks:5.2f}"
        )
    print()
    print("and the width follows the *data*, not the source:")
    for n_cells in (4, 16, 64):
        result = SimulatedExecutor(uniform(64)).run(
            program.graph, args=(n_cells,), registry=registry
        )
        print(
            f"  {n_cells:>3} cells on 64 processors: "
            f"{result.ticks / 1e6:7.3f}M ticks "
            f"(value {result.value:.3f})"
        )
    print()
    print("compare: the paper's retina listing forks exactly four ways, so")
    print("its speedup stops near four — see "
          "benchmarks/bench_dynamic_parallelism.py.")


if __name__ == "__main__":
    main()
