"""Parallel recursive backtracking: the paper's eight-queens program.

Runs the section 3 listing verbatim, demonstrates determinism across
scheduling orders, and measures what the three-level priority queue does
to the activation explosion (section 7).

Run:  python examples/eight_queens.py [N]
"""

import sys

from repro import SequentialExecutor, compile_source
from repro.apps.queens import (
    PAPER_EIGHT_QUEENS,
    make_registry,
    queens_source,
    solve_sequential,
)
from repro.machine import SimulatedExecutor, cray_2, speedup_curve


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    source = PAPER_EIGHT_QUEENS if n == 8 else queens_source(n)
    program = compile_source(source, registry=make_registry(n))

    result = SequentialExecutor().run(program.graph, registry=program.registry)
    oracle = solve_sequential(n)
    assert result.value == oracle
    print(f"{n}-queens: {len(result.value)} solutions "
          f"(matches the sequential oracle)")
    print(f"first solution: {result.value[0] if result.value else '-'}")
    stats = result.stats
    print(f"copy-on-write copies: {stats.cow_copies}, "
          f"in-place board writes: {stats.in_place_writes}")

    # The priority-scheme ablation.
    fifo = SequentialExecutor(use_priorities=False).run(
        program.graph, registry=program.registry
    )
    assert fifo.value == result.value
    peak_with = stats.activation_stats["peak_live"]
    peak_without = fifo.stats.activation_stats["peak_live"]
    print(f"peak live activations: {peak_with} with priorities, "
          f"{peak_without} with a flat FIFO "
          f"({peak_without / peak_with:.1f}x more)")

    # And the search tree parallelizes nicely on a simulated Cray-2.
    curve = speedup_curve(
        program.graph, cray_2(1), [1, 2, 4, 8], registry=program.registry
    )
    print("speedup on simulated Cray-2:",
          ", ".join(f"P={p}: {s:.2f}" for p, s in curve.items()))


if __name__ == "__main__":
    main()
