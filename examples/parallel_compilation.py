"""The compiler compiled by itself — Table 1 (section 6).

Generates a compiler-sized Delirium workload, compiles it through the
Delirium-coordinated parallel compiler on the simulated Sequent Symmetry
with one and with three processors, and prints the paper's table.

Run:  python examples/parallel_compilation.py
"""

from repro.apps.compiler_app import run_table1
from repro.tools import pass_table


def main() -> None:
    result = run_table1()
    print(pass_table(result.sequential, result.parallel, result.n_processors))
    print()
    print("per-pass speedups:")
    for name, speedup in result.per_pass_speedup().items():
        print(f"  {name:<18} {speedup:.2f}")
    print()
    print(f"compiled artifact: {result.artifact['templates']} templates, "
          f"{result.artifact['nodes']} graph nodes")
    print("(paper: per-pass speedups between two and three, lexing "
          "sequential, overall ~2.2 on three Sequent processors)")


if __name__ == "__main__":
    main()
